//! A lightweight Rust lexer for source auditing.
//!
//! The workspace builds offline with no dependencies, so the lint rules
//! cannot lean on `syn`. This lexer produces just enough structure for
//! the determinism rules in [`crate::rules`]:
//!
//! * a flat token stream ([`Token`]) with per-token line numbers —
//!   identifiers, numbers, punctuation, lifetimes, and literals;
//! * full string/char/comment awareness: the contents of string literals,
//!   raw strings (`r#"…"#` at any hash depth), byte strings, char
//!   literals, and comments (line, doc, and nested block) never appear as
//!   code tokens, so a rule can mention `HashMap` in a message constant
//!   without flagging itself;
//! * `// lint: allow(<rule>)` escape-hatch comments, collected with the
//!   line they sit on ([`Lexed::allows`]);
//! * trailing-`#[cfg(test)]`-module detection ([`Lexed::test_ranges`]),
//!   so rules audit only shipping code — test modules may unwrap, hash,
//!   and clock-read freely.
//!
//! The lexer is intentionally forgiving: an unterminated literal consumes
//! the rest of the file rather than erroring, because the rules run over
//! source that `rustc` has already accepted.

/// What a token is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`HashMap`, `for`, `let`, …).
    Ident,
    /// Numeric literal (`0x1F`, `1_000`, `2.5e3`).
    Number,
    /// String, raw-string, byte-string, or char literal (contents opaque).
    Literal,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// Single punctuation character (`.`, `:`, `(`, `!`, …).
    Punct(char),
}

/// One lexed token with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// Token text (empty for [`TokenKind::Literal`] — contents are opaque).
    pub text: String,
    /// 1-based source line the token starts on.
    pub line: usize,
}

impl Token {
    /// `true` for an identifier with exactly this text.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// `true` for this punctuation character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }
}

/// An in-source suppression: `// lint: allow(<rule>)` on `line`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// 1-based line the comment sits on.
    pub line: usize,
    /// Rule identifier inside the parentheses.
    pub rule: String,
}

/// The result of lexing one file.
#[derive(Debug, Clone, Default)]
pub struct Lexed {
    /// Code tokens in source order (no comments, no literal contents).
    pub tokens: Vec<Token>,
    /// Escape-hatch comments, in source order.
    pub allows: Vec<Allow>,
    /// Token-index ranges `[start, end)` covering `#[cfg(test)]` items.
    pub test_ranges: Vec<(usize, usize)>,
}

impl Lexed {
    /// `true` when token `idx` is inside a `#[cfg(test)]` item.
    pub fn in_test_code(&self, idx: usize) -> bool {
        self.test_ranges
            .iter()
            .any(|&(s, e)| idx >= s && idx < e)
    }

    /// `true` when a finding of `rule` on `line` is suppressed by an
    /// allow comment on the same line or the line directly above.
    pub fn allowed(&self, rule: &str, line: usize) -> bool {
        self.allows
            .iter()
            .any(|a| a.rule == rule && (a.line == line || a.line + 1 == line))
    }
}

/// Lexes `src` into tokens, allow-directives, and test-module ranges.
pub fn lex(src: &str) -> Lexed {
    let mut lx = Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        out: Lexed::default(),
    };
    lx.run();
    mark_test_ranges(&mut lx.out);
    lx.out
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    out: Lexed,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn push(&mut self, kind: TokenKind, text: impl Into<String>, line: usize) {
        self.out.tokens.push(Token {
            kind,
            text: text.into(),
            line,
        });
    }

    fn run(&mut self) {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string_literal(line),
                'r' | 'b' if self.raw_or_byte_literal(line) => {}
                '\'' => self.char_or_lifetime(line),
                c if c.is_ascii_digit() => self.number(line),
                c if c == '_' || c.is_alphanumeric() => self.ident(line),
                _ => {
                    self.bump();
                    self.push(TokenKind::Punct(c), String::new(), line);
                }
            }
        }
    }

    /// Consumes `//…\n`, capturing `lint: allow(rule[, rule…])` directives.
    fn line_comment(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.capture_allow(&text, line);
    }

    /// Consumes a (nested) block comment; directives inside are honoured.
    fn block_comment(&mut self) {
        let line = self.line;
        let mut depth = 0usize;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.capture_allow(&text, line);
    }

    /// Parses `lint: allow(a, b)` out of a comment body.
    fn capture_allow(&mut self, comment: &str, line: usize) {
        let Some(at) = comment.find("lint: allow(") else {
            return;
        };
        let rest = &comment[at + "lint: allow(".len()..];
        let Some(end) = rest.find(')') else { return };
        for rule in rest[..end].split(',') {
            let rule = rule.trim();
            if !rule.is_empty() {
                self.out.allows.push(Allow {
                    line,
                    rule: rule.to_owned(),
                });
            }
        }
    }

    /// Consumes `"…"` with escape handling.
    fn string_literal(&mut self, line: usize) {
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
        self.push(TokenKind::Literal, String::new(), line);
    }

    /// Tries to consume `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `b'…'`.
    /// Returns `false` when the `r`/`b` starts a plain identifier.
    fn raw_or_byte_literal(&mut self, line: usize) -> bool {
        let c0 = self.peek(0);
        let (skip, raw) = match (c0, self.peek(1), self.peek(2)) {
            (Some('b'), Some('\''), _) => {
                // Byte char literal b'x' (possibly escaped).
                self.bump();
                self.char_or_lifetime(line);
                return true;
            }
            (Some('b'), Some('"'), _) => (1, false),
            (Some('r'), Some('"' | '#'), _) => (1, true),
            (Some('b'), Some('r'), Some('"' | '#')) => (2, true),
            _ => return false,
        };
        for _ in 0..skip {
            self.bump();
        }
        if raw {
            let mut hashes = 0usize;
            while self.peek(0) == Some('#') {
                hashes += 1;
                self.bump();
            }
            if self.peek(0) != Some('"') {
                // `r#foo` raw identifier: emit the identifier.
                self.ident(line);
                return true;
            }
            self.bump(); // opening quote
            // Scan for `"` followed by `hashes` hash marks.
            'outer: while let Some(c) = self.bump() {
                if c == '"' {
                    for i in 0..hashes {
                        if self.peek(i) != Some('#') {
                            continue 'outer;
                        }
                    }
                    for _ in 0..hashes {
                        self.bump();
                    }
                    break;
                }
            }
            self.push(TokenKind::Literal, String::new(), line);
        } else {
            self.string_literal(line);
        }
        true
    }

    /// Disambiguates char literals from lifetimes at a `'`.
    fn char_or_lifetime(&mut self, line: usize) {
        self.bump(); // the quote
        match (self.peek(0), self.peek(1)) {
            // Escaped char: '\n', '\u{…}', '\\'.
            (Some('\\'), _) => {
                self.bump();
                while let Some(c) = self.bump() {
                    if c == '\'' {
                        break;
                    }
                }
                self.push(TokenKind::Literal, String::new(), line);
            }
            // 'x' — a char literal only when the closing quote follows.
            (Some(_), Some('\'')) => {
                self.bump();
                self.bump();
                self.push(TokenKind::Literal, String::new(), line);
            }
            // 'ident — a lifetime.
            (Some(c), _) if c == '_' || c.is_alphanumeric() => {
                let mut text = String::from("'");
                while let Some(c) = self.peek(0) {
                    if c == '_' || c.is_alphanumeric() {
                        text.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
                self.push(TokenKind::Lifetime, text, line);
            }
            _ => {
                self.push(TokenKind::Punct('\''), String::new(), line);
            }
        }
    }

    fn number(&mut self, line: usize) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            // Good enough for audit purposes: consumes ints, floats,
            // hex/oct/bin forms, separators, and type suffixes.
            if c.is_ascii_alphanumeric() || c == '_' || c == '.' {
                // A `.` only continues the number when a digit follows
                // (`1.5` yes, `1.max(2)` and `0..n` no).
                if c == '.' && !self.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                    break;
                }
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokenKind::Number, text, line);
    }

    fn ident(&mut self, line: usize) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokenKind::Ident, text, line);
    }
}

/// Finds `#[cfg(test)]` attributes and marks the token range of the item
/// they gate (through the item's closing brace or semicolon) as test code.
fn mark_test_ranges(out: &mut Lexed) {
    let t = &out.tokens;
    let mut i = 0;
    while i + 5 < t.len() {
        let is_cfg_test = t[i].is_punct('#')
            && t[i + 1].is_punct('[')
            && t[i + 2].is_ident("cfg")
            && t[i + 3].is_punct('(')
            && t[i + 4].is_ident("test")
            && t[i + 5].is_punct(')');
        if !is_cfg_test {
            i += 1;
            continue;
        }
        // Skip to the end of this attribute, then over any further
        // attributes/doc markers, to the item's first brace.
        let mut j = i + 6;
        let mut depth = 0usize;
        let start = i;
        let mut end = t.len();
        while j < t.len() {
            match t[j].kind {
                TokenKind::Punct('{') => depth += 1,
                TokenKind::Punct('}') => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        end = j + 1;
                        break;
                    }
                }
                // An item ending before any brace opened (`#[cfg(test)]
                // use …;`) spans to the semicolon.
                TokenKind::Punct(';') if depth == 0 => {
                    end = j + 1;
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        out.test_ranges.push((start, end));
        i = end;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.clone())
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_code_words() {
        let src = r##"
            let a = "HashMap::iter()"; // HashMap in a comment
            /* HashMap in /* a nested */ block */
            let b = r#"Instant::now()"#;
            let c = b"bytes";
            let d = 'x';
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"HashMap".to_owned()), "{ids:?}");
        assert!(!ids.contains(&"Instant".to_owned()), "{ids:?}");
        assert_eq!(
            ids,
            vec!["let", "a", "let", "b", "let", "c", "let", "d"]
        );
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a str) -> &'a str { x }");
        let lifetimes: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 3);
        assert!(lifetimes.iter().all(|t| t.text == "'a"));
    }

    #[test]
    fn lines_are_tracked() {
        let lexed = lex("a\nb\n\nc");
        let lines: Vec<usize> = lexed.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn allow_directives_are_captured() {
        let lexed = lex(
            "let t = x; // lint: allow(wall-clock)\n\
             // lint: allow(hash-iter, float-ord)\n\
             let u = y;\n",
        );
        let got: Vec<(usize, &str)> = lexed
            .allows
            .iter()
            .map(|a| (a.line, a.rule.as_str()))
            .collect();
        assert_eq!(
            got,
            vec![(1, "wall-clock"), (2, "hash-iter"), (2, "float-ord")]
        );
        assert!(lexed.allowed("wall-clock", 1));
        assert!(lexed.allowed("hash-iter", 3), "line below the comment");
        assert!(!lexed.allowed("hash-iter", 4));
    }

    #[test]
    fn cfg_test_module_is_ranged() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod tests {\n fn t() { inner() }\n}\nfn after() {}";
        let lexed = lex(src);
        assert_eq!(lexed.test_ranges.len(), 1);
        let inner_idx = lexed
            .tokens
            .iter()
            .position(|t| t.is_ident("inner"))
            .unwrap();
        let after_idx = lexed
            .tokens
            .iter()
            .position(|t| t.is_ident("after"))
            .unwrap();
        assert!(lexed.in_test_code(inner_idx));
        assert!(!lexed.in_test_code(after_idx));
    }

    #[test]
    fn raw_string_with_hashes_round_trips() {
        let src = "let s = r##\"quote \" and # inside\"##; let tail = 1;";
        let ids = idents(src);
        assert_eq!(ids, vec!["let", "s", "let", "tail"]);
    }

    #[test]
    fn numbers_do_not_swallow_method_calls() {
        let lexed = lex("let x = 1.max(2); let y = 1.5; let r = 0..n;");
        let max_call = lexed.tokens.iter().any(|t| t.is_ident("max"));
        assert!(max_call);
        let nums: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Number)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(nums, vec!["1", "2", "1.5", "0"]);
    }
}
