//! The determinism & concurrency rule set.
//!
//! Each rule has a stable identifier, a severity, a fix-it hint, and an
//! in-source escape hatch: a `// lint: allow(<rule>)` comment on the
//! finding's line (or the line directly above) suppresses it. The rules
//! exist to protect the simulator's byte-identical-output guarantee — the
//! property the epoch-parallel multi-SM roadmap item depends on — by
//! refusing the constructs that let hidden ordering or wall-clock state
//! leak into simulation results:
//!
//! | rule           | hazard                                                    |
//! |----------------|-----------------------------------------------------------|
//! | `hash-iter`    | iteration over `std` `HashMap`/`HashSet` (random order)   |
//! | `wall-clock`   | `Instant::now`/`SystemTime` outside the `Clock` trait     |
//! | `unseeded-rng` | RNG construction from entropy instead of a derived seed   |
//! | `float-ord`    | float sort keys / `partial_cmp().unwrap()` partial orders |
//! | `shared-mut`   | `static mut`, `Relaxed` atomics, locks, channels in sim state |
//! | `panic-path`   | panicking escape hatches on audited critical paths        |
//!
//! Rules are token-level with light semantic tracking (hash-typed binding
//! names, call-argument spans), which keeps the pass dependency-free and
//! fast; the trade-off — documented per rule — is that they audit names
//! and shapes, not types.

use crate::lexer::{Lexed, Token, TokenKind};

/// Severity of every active finding (the gate runs `--deny-warnings`;
/// baselined findings are demoted to notes).
pub use gpu_common::Severity;

/// One rule violation in one file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Stable rule identifier (`"hash-iter"`, …).
    pub rule: &'static str,
    /// 1-based source line.
    pub line: usize,
    /// What was found.
    pub message: String,
    /// How to fix it.
    pub hint: &'static str,
}

/// Per-file context the rules run against.
#[derive(Debug, Clone)]
pub struct FileCtx<'a> {
    /// Lexed source.
    pub lexed: &'a Lexed,
    /// Workspace-relative path (used in messages and audit matching).
    pub path: &'a str,
    /// `true` for the cycle-level simulator crates, where shared-mutable
    /// state is categorically refused (not just discouraged).
    pub sim_crate: bool,
    /// `true` when this file is on the panic-path audit list.
    pub panic_audited: bool,
}

/// All rule identifiers, in reporting order.
pub const RULE_IDS: &[&str] = &[
    "hash-iter",
    "wall-clock",
    "unseeded-rng",
    "float-ord",
    "shared-mut",
    "panic-path",
];

/// Runs every rule over one file and returns surviving findings in
/// (line, rule) order. Findings inside `#[cfg(test)]` items and findings
/// with a matching allow-comment are dropped here.
pub fn run_rules(ctx: &FileCtx<'_>) -> Vec<Finding> {
    let mut findings = Vec::new();
    hash_iter(ctx, &mut findings);
    wall_clock(ctx, &mut findings);
    unseeded_rng(ctx, &mut findings);
    float_ord(ctx, &mut findings);
    shared_mut(ctx, &mut findings);
    if ctx.panic_audited {
        panic_path(ctx, &mut findings);
    }
    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    findings.dedup();
    findings
}

/// Pushes a finding unless its line carries an allow for the rule.
fn emit(
    ctx: &FileCtx<'_>,
    out: &mut Vec<Finding>,
    rule: &'static str,
    token_idx: usize,
    message: String,
    hint: &'static str,
) {
    let line = ctx.lexed.tokens[token_idx].line;
    if ctx.lexed.in_test_code(token_idx) || ctx.lexed.allowed(rule, line) {
        return;
    }
    out.push(Finding {
        rule,
        line,
        message,
        hint,
    });
}

/// Methods whose results depend on container iteration order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "retain",
];

/// `hash-iter` — iteration over `std` `HashMap`/`HashSet`.
///
/// Pass 1 collects *hash names*: identifiers bound to a `HashMap` or
/// `HashSet` by a type ascription (`name: HashMap<…>`, struct fields and
/// `let` alike, through any `std::collections::` path) or by an untyped
/// construction (`let name = HashMap::new()`). Pass 2 flags every
/// iteration-order-dependent use of a hash name: an [`ITER_METHODS`] call
/// or a `for … in` loop over it. Lookups (`get`, `insert`,
/// `contains_key`) stay legal — only *order* is nondeterministic.
///
/// The remediation follows the workspace's flat-vs-ordered container
/// policy (DESIGN.md §13): hot lookup paths replace the hash container
/// with a **flat sorted `Vec`** (deterministic by construction, no
/// pointer-chasing — the shipped MSHR file and L1 per-PC stats are the
/// reference examples); `BTreeMap`/`BTreeSet` is the fallback where key
/// order is genuinely load-bearing (event queues) or the set is tiny and
/// rarely touched.
fn hash_iter(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    let t = &ctx.lexed.tokens;
    let mut hash_names: Vec<&str> = Vec::new();
    for (i, tok) in t.iter().enumerate() {
        if !(tok.is_ident("HashMap") || tok.is_ident("HashSet")) {
            continue;
        }
        if let Some(name) = binding_name_before(t, i) {
            if !hash_names.contains(&name) {
                hash_names.push(name);
            }
        }
    }
    for (i, tok) in t.iter().enumerate() {
        let TokenKind::Ident = tok.kind else { continue };
        if !hash_names.contains(&tok.text.as_str()) {
            continue;
        }
        // `name.iter()` / `self.name.drain()` — a method call follows.
        let is_iter_call = t.get(i + 1).is_some_and(|d| d.is_punct('.'))
            && t.get(i + 2).is_some_and(|m| {
                ITER_METHODS.iter().any(|im| m.is_ident(im))
            })
            && t.get(i + 3).is_some_and(|p| p.is_punct('('));
        // `for x in [&[mut]] [self.]name {` — a loop header ends at it.
        let is_for_target = in_for_loop_header(t, i)
            && t.get(i + 1).is_some_and(|n| n.is_punct('{'));
        if is_iter_call || is_for_target {
            let how = if is_iter_call {
                format!(".{}()", t[i + 2].text)
            } else {
                "for-loop".to_owned()
            };
            emit(
                ctx,
                out,
                "hash-iter",
                i,
                format!(
                    "iteration over std hash container `{}` ({how}): \
                     RandomState makes the visit order differ per process",
                    tok.text
                ),
                "prefer a flat sorted Vec on hot lookup paths (DESIGN.md \
                 §13 container policy); use BTreeMap/BTreeSet when key \
                 order is load-bearing, or collect-and-sort before iterating",
            );
        }
    }
}

/// Walks back from a `HashMap`/`HashSet` token to the identifier it is
/// bound to, if the shape is a binding.
fn binding_name_before(t: &[Token], mut i: usize) -> Option<&str> {
    // Skip a leading path (`std :: collections ::`): hop back over
    // `ident ::` pairs.
    while i >= 2 && t[i - 1].is_punct(':') && t[i - 2].is_punct(':') {
        i -= 2;
        if i >= 1 && t[i - 1].kind == TokenKind::Ident {
            i -= 1;
        } else {
            return None;
        }
    }
    if i == 0 {
        return None;
    }
    match &t[i - 1] {
        // `name : HashMap<…>` (field or typed let).
        c if c.is_punct(':') => {
            let n = t.get(i.checked_sub(2)?)?;
            (n.kind == TokenKind::Ident).then_some(n.text.as_str())
        }
        // `let [mut] name = HashMap::new()` / `self.name = HashMap::new()`.
        // A non-identifier before the `=` (e.g. the `>` closing a typed
        // let's generics) is not a binding shape.
        c if c.is_punct('=') => {
            let n = t.get(i.checked_sub(2)?)?;
            (n.kind == TokenKind::Ident && !n.is_ident("mut"))
                .then_some(n.text.as_str())
        }
        _ => None,
    }
}

/// `true` when token `i` sits between a `for … in` and the loop body
/// brace on the same statement (i.e. it is part of the iterated
/// expression).
fn in_for_loop_header(t: &[Token], i: usize) -> bool {
    // Walk back a bounded distance looking for `in` preceded (further
    // back) by `for`, without crossing a `{`, `}` or `;`.
    let lo = i.saturating_sub(12);
    let mut saw_in = None;
    for j in (lo..i).rev() {
        match &t[j].kind {
            TokenKind::Punct('{' | '}' | ';') => break,
            TokenKind::Ident if t[j].text == "in" => saw_in = Some(j),
            TokenKind::Ident if t[j].text == "for" => {
                return saw_in.is_some();
            }
            _ => {}
        }
    }
    false
}

/// `wall-clock` — `Instant::now` / `SystemTime` outside the `Clock`
/// abstraction.
///
/// The simulator's only legal time sources are the virtual cycle counter
/// and `gpu_common::clock::Clock`; those two implementations (and the
/// bench harness's TTY progress path) carry explicit allow-comments.
fn wall_clock(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    let t = &ctx.lexed.tokens;
    for (i, tok) in t.iter().enumerate() {
        if tok.is_ident("Instant")
            && t.get(i + 1).is_some_and(|c| c.is_punct(':'))
            && t.get(i + 2).is_some_and(|c| c.is_punct(':'))
            && t.get(i + 3).is_some_and(|n| n.is_ident("now"))
        {
            emit(
                ctx,
                out,
                "wall-clock",
                i,
                "raw wall-clock read (`Instant::now`) bypasses the Clock \
                 abstraction"
                    .to_owned(),
                "take a `&dyn gpu_common::clock::Clock` (WallClock in \
                 production, VirtualClock in tests) so time is mockable \
                 and --no-time runs stay byte-identical",
            );
        }
        if tok.is_ident("SystemTime") {
            emit(
                ctx,
                out,
                "wall-clock",
                i,
                "`SystemTime` is a non-monotonic wall-clock source".to_owned(),
                "route time through gpu_common::clock::Clock; SystemTime \
                 has no deterministic stand-in",
            );
        }
    }
}

/// Entropy sources that are nondeterministic by construction.
const ENTROPY_SOURCES: &[&str] = &["thread_rng", "from_entropy", "OsRng", "RandomState"];

/// RNG constructors that take a seed and must receive a deterministic one.
const SEEDED_CONSTRUCTORS: &[(&str, &str)] = &[
    ("Xoshiro256", "seed_from_u64"),
    ("SeedStream", "new"),
];

/// `unseeded-rng` — RNG construction not derived from an explicit seed.
///
/// Two shapes are flagged: (a) any use of a known entropy source
/// ([`ENTROPY_SOURCES`]); (b) a call to a seeded constructor
/// ([`SEEDED_CONSTRUCTORS`]) whose argument span contains neither a
/// numeric literal nor an identifier mentioning "seed" — the workspace
/// convention being that every seed value is either a constant or flows
/// through `derive_seed`/`*_seed`-named bindings.
fn unseeded_rng(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    let t = &ctx.lexed.tokens;
    for (i, tok) in t.iter().enumerate() {
        if ENTROPY_SOURCES.iter().any(|s| tok.is_ident(s)) {
            emit(
                ctx,
                out,
                "unseeded-rng",
                i,
                format!(
                    "`{}` draws from process entropy: results cannot be \
                     reproduced from a seed",
                    tok.text
                ),
                "construct RNGs from derive_seed(base, index) or an \
                 explicit seed constant",
            );
            continue;
        }
        let is_ctor = SEEDED_CONSTRUCTORS.iter().any(|(ty, method)| {
            tok.is_ident(ty)
                && t.get(i + 1).is_some_and(|c| c.is_punct(':'))
                && t.get(i + 2).is_some_and(|c| c.is_punct(':'))
                && t.get(i + 3).is_some_and(|m| m.is_ident(method))
                && t.get(i + 4).is_some_and(|p| p.is_punct('('))
        });
        if !is_ctor {
            continue;
        }
        let Some(args) = call_arg_span(t, i + 4) else {
            continue;
        };
        let deterministic = t[args.0..args.1].iter().any(|a| match &a.kind {
            TokenKind::Number => true,
            TokenKind::Ident => a.text.to_ascii_lowercase().contains("seed"),
            _ => false,
        });
        if !deterministic {
            emit(
                ctx,
                out,
                "unseeded-rng",
                i,
                format!(
                    "`{}::{}` argument shows no explicit seed (no literal \
                     and no seed-named binding)",
                    tok.text, t[i + 3].text
                ),
                "derive the value via derive_seed(..) or name the binding \
                 *_seed so provenance is auditable",
            );
        }
    }
}

/// Token span `(start, end)` of the arguments of a call whose opening
/// paren is at `open`.
fn call_arg_span(t: &[Token], open: usize) -> Option<(usize, usize)> {
    let mut depth = 0usize;
    for (j, tok) in t.iter().enumerate().skip(open) {
        match tok.kind {
            TokenKind::Punct('(') => depth += 1,
            TokenKind::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    return Some((open + 1, j));
                }
            }
            _ => {}
        }
    }
    None
}

/// Comparator-taking methods whose closure must impose a *total* order.
const ORDER_SINKS: &[&str] = &["sort_by", "sort_unstable_by", "min_by", "max_by"];

/// `float-ord` — partial orders used where a total order is required.
///
/// Flags `partial_cmp` when it feeds a sort/min/max comparator or is
/// force-unwrapped: both shapes make NaN (or a refactor that introduces
/// one) reorder results or panic depending on data.
fn float_ord(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    let t = &ctx.lexed.tokens;
    // Collect the argument spans of every order-sink call.
    let mut sink_spans: Vec<(usize, usize)> = Vec::new();
    for (i, tok) in t.iter().enumerate() {
        if ORDER_SINKS.iter().any(|s| tok.is_ident(s)) {
            if let Some(open) = t.get(i + 1).and_then(|p| p.is_punct('(').then_some(i + 1)) {
                if let Some(span) = call_arg_span(t, open) {
                    sink_spans.push(span);
                }
            }
        }
    }
    for (i, tok) in t.iter().enumerate() {
        if !tok.is_ident("partial_cmp") {
            continue;
        }
        let in_sink = sink_spans.iter().any(|&(s, e)| i >= s && i < e);
        // `partial_cmp(..).unwrap()` / `.expect(..)`.
        let unwrapped = t
            .get(i + 1)
            .and_then(|p| p.is_punct('(').then_some(i + 1))
            .and_then(|open| call_arg_span(t, open))
            .map(|(_, close)| {
                t.get(close + 1).is_some_and(|d| d.is_punct('.'))
                    && t.get(close + 2)
                        .is_some_and(|m| m.is_ident("unwrap") || m.is_ident("expect"))
            })
            .unwrap_or(false);
        if in_sink || unwrapped {
            emit(
                ctx,
                out,
                "float-ord",
                i,
                format!(
                    "`partial_cmp` {} imposes only a partial order: NaN \
                     reorders or panics data-dependently",
                    if in_sink {
                        "inside a sort/min/max comparator"
                    } else {
                        "force-unwrapped"
                    }
                ),
                "compare with f64::total_cmp (or sort by an integer key)",
            );
        }
    }
}

/// `shared-mut` — mutable state observable across threads in sim paths.
///
/// `static mut` is refused everywhere. In simulator crates
/// ([`FileCtx::sim_crate`]) `Mutex`/`RwLock` and `Relaxed`-ordered
/// atomics are refused too: a simulation must be a pure single-threaded
/// function of its inputs, with cross-SM communication happening through
/// explicitly ordered queues — never through locks whose acquisition
/// order the scheduler picks.
fn shared_mut(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    let t = &ctx.lexed.tokens;
    for (i, tok) in t.iter().enumerate() {
        if tok.is_ident("static") && t.get(i + 1).is_some_and(|m| m.is_ident("mut")) {
            emit(
                ctx,
                out,
                "shared-mut",
                i,
                "`static mut` is unsynchronized global state".to_owned(),
                "thread the state through the owning struct, or use an \
                 atomic with explicit ordering outside sim crates",
            );
        }
        if !ctx.sim_crate {
            continue;
        }
        if tok.is_ident("Mutex") || tok.is_ident("RwLock") {
            emit(
                ctx,
                out,
                "shared-mut",
                i,
                format!(
                    "`{}` in a simulator crate: lock-acquisition order is \
                     scheduler-chosen and would leak into results under \
                     intra-sim threading",
                    tok.text
                ),
                "keep per-SM state owned by the SM; exchange inter-SM \
                 messages at epoch barriers in a fixed order",
            );
        }
        if tok.is_ident("Relaxed")
            && i >= 2
            && t[i - 1].is_punct(':')
            && t[i - 2].is_punct(':')
        {
            emit(
                ctx,
                out,
                "shared-mut",
                i,
                "`Relaxed`-ordered atomic in a simulator crate: permits \
                 cross-thread reordering that changes observable state"
                    .to_owned(),
                "simulator state must not be shared mutably; if an atomic \
                 is unavoidable use SeqCst and document why",
            );
        }
        // Channels are cross-thread communication too: only the epoch
        // barrier (gpu-sm's `epoch` module) may use them, through explicit
        // shared-mut waiver comments — tests/workspace_lint.rs caps how
        // many such waivers exist and pins them to that file.
        let is_channel_ctor = tok.is_ident("channel")
            && i >= 2
            && t[i - 1].is_punct(':')
            && t[i - 2].is_punct(':')
            && t.get(i.wrapping_sub(3)).is_some_and(|m| m.is_ident("mpsc"));
        if tok.is_ident("Sender")
            || tok.is_ident("Receiver")
            || tok.is_ident("SyncSender")
            || is_channel_ctor
        {
            emit(
                ctx,
                out,
                "shared-mut",
                i,
                format!(
                    "`{}` in a simulator crate: channel traffic order is \
                     scheduler-chosen unless drained at a deterministic \
                     barrier",
                    tok.text
                ),
                "only the epoch-barrier shard exchange may use channels; \
                 anywhere else, exchange inter-SM messages through owned \
                 queues in a fixed order",
            );
        }
    }
}

/// Panicking escape hatches refused on audited critical paths.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// `panic-path` — unwrap/expect/panic-family macros on critical paths.
///
/// Supersedes the old grep-based `panic_free_paths` integration test: the
/// audited file list lives in [`crate::workspace::LintConfig`], and the
/// lexer (unlike grep) sees through strings, comments, and `#[cfg(test)]`
/// modules.
fn panic_path(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    let t = &ctx.lexed.tokens;
    for (i, tok) in t.iter().enumerate() {
        // `.unwrap()` / `.expect(` — method position only, so
        // `unwrap_or_else` and friends stay legal.
        if (tok.is_ident("unwrap") || tok.is_ident("expect"))
            && i >= 1
            && t[i - 1].is_punct('.')
            && t.get(i + 1).is_some_and(|p| p.is_punct('('))
        {
            emit(
                ctx,
                out,
                "panic-path",
                i,
                format!("`.{}()` on an audited critical path", tok.text),
                "return a typed SimError (see DESIGN.md §8) instead of \
                 panicking",
            );
        }
        if PANIC_MACROS.iter().any(|m| tok.is_ident(m))
            && t.get(i + 1).is_some_and(|b| b.is_punct('!'))
        {
            emit(
                ctx,
                out,
                "panic-path",
                i,
                format!("`{}!` on an audited critical path", tok.text),
                "return a typed SimError (see DESIGN.md §8) instead of \
                 panicking",
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(src: &str, sim_crate: bool, panic_audited: bool) -> Vec<Finding> {
        let lexed = lex(src);
        run_rules(&FileCtx {
            lexed: &lexed,
            path: "test.rs",
            sim_crate,
            panic_audited,
        })
    }

    #[test]
    fn hash_iter_tracks_fields_and_lets() {
        let src = "
            struct S { table: HashMap<u64, u32>, fine: Vec<u32> }
            impl S {
                fn bad(&self) { for x in self.table.values() { use_(x) } }
                fn ok(&self) { self.table.get(&1); self.fine.iter().count(); }
            }
            fn local() {
                let mut seen = HashSet::new();
                for s in seen.drain() { use_(s) }
            }
        ";
        let f = run(src, false, false);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|f| f.rule == "hash-iter"));
    }

    #[test]
    fn hash_iter_catches_qualified_paths_and_for_loops() {
        let src = "
            struct S { no_fill: std::collections::HashSet<u64> }
            fn f(s: S) { for l in &s.no_fill { use_(l) } }
        ";
        let f = run(src, false, false);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "hash-iter");
    }

    #[test]
    fn vec_iteration_is_legal() {
        let f = run(
            "fn f(v: Vec<u32>, m: BTreeMap<u32, u32>) {
                 for x in &v { use_(x) }
                 for (k, _) in &m { use_(k) }
             }",
            true,
            true,
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn wall_clock_flags_instant_and_systemtime() {
        let f = run(
            "fn f() { let t = Instant::now(); let s = SystemTime::now(); }",
            false,
            false,
        );
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|f| f.rule == "wall-clock"));
    }

    #[test]
    fn allow_comment_suppresses() {
        let f = run(
            "fn f() {\n let t = Instant::now(); // lint: allow(wall-clock)\n}",
            false,
            false,
        );
        assert!(f.is_empty(), "{f:?}");
        // The hatch is rule-specific.
        let f = run(
            "fn f() {\n let t = Instant::now(); // lint: allow(hash-iter)\n}",
            false,
            false,
        );
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn cfg_test_code_is_exempt() {
        let f = run(
            "fn prod() {}\n#[cfg(test)]\nmod tests {\n fn t() { let x = \
             Instant::now(); v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }\n}",
            true,
            true,
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn unseeded_rng_needs_seed_provenance() {
        let bad = run("fn f() { let r = Xoshiro256::seed_from_u64(h); }", false, false);
        assert_eq!(bad.len(), 1, "{bad:?}");
        assert_eq!(bad[0].rule, "unseeded-rng");
        for ok_src in [
            "fn f() { let r = Xoshiro256::seed_from_u64(7); }",
            "fn f() { let r = Xoshiro256::seed_from_u64(self.seed(i)); }",
            "fn f() { let r = SeedStream::new(BASE_SEED); }",
            "fn f() { let r = Xoshiro256::seed_from_u64(derive_seed(a, b)); }",
        ] {
            assert!(run(ok_src, false, false).is_empty(), "{ok_src}");
        }
        let entropy = run("fn f() { let r = thread_rng(); }", false, false);
        assert_eq!(entropy.len(), 1);
        assert_eq!(entropy[0].rule, "unseeded-rng");
    }

    #[test]
    fn float_ord_flags_sorts_and_unwraps() {
        let f = run(
            "fn f(v: &mut Vec<f64>) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }",
            false,
            false,
        );
        assert_eq!(f.len(), 1, "one finding per partial_cmp: {f:?}");
        assert_eq!(f[0].rule, "float-ord");
        let ok = run("fn f(v: &mut Vec<f64>) { v.sort_by(f64::total_cmp); }", false, false);
        assert!(ok.is_empty());
        // partial_cmp with graceful handling outside a sort is legal.
        let ok = run(
            "fn f(a: f64, b: f64) -> bool { a.partial_cmp(&b).is_some() }",
            false,
            false,
        );
        assert!(ok.is_empty(), "{ok:?}");
    }

    #[test]
    fn shared_mut_scopes_by_crate_kind() {
        let src = "static mut C: u64 = 0;\nstruct S { m: Mutex<u64> }\n\
                   fn f(a: &AtomicU64) { a.load(Ordering::Relaxed); }";
        let sim = run(src, true, false);
        assert_eq!(sim.len(), 3, "{sim:?}");
        assert!(sim.iter().all(|f| f.rule == "shared-mut"));
        // Outside sim crates only `static mut` is refused.
        let infra = run(src, false, false);
        assert_eq!(infra.len(), 1, "{infra:?}");
        assert_eq!(infra[0].line, 1);
    }

    #[test]
    fn shared_mut_flags_channels_in_sim_crates() {
        let src = "struct S { tx: std::sync::mpsc::Sender<u64> }\n\
                   fn f() -> Receiver<u64> { let (a, b) = mpsc::channel(); b }\n\
                   fn g(s: SyncSender<u64>) { s.send(1); }";
        let sim = run(src, true, false);
        // Sender; Receiver and the mpsc::channel() ctor; SyncSender.
        assert_eq!(sim.len(), 4, "{sim:?}");
        assert!(sim.iter().all(|f| f.rule == "shared-mut"));
        assert!(run(src, false, false).is_empty(), "infra crates may use channels");
        // A bare `channel` identifier (helper fn, local) is not a ctor call.
        let ok = run("fn channel() -> u32 { let channel = 3; channel }", true, false);
        assert!(ok.is_empty(), "{ok:?}");
        // The epoch-barrier escape hatch works per line.
        let allowed = run(
            "type Tx<T> = mpsc::Sender<T>; // lint: allow(shared-mut)\n",
            true,
            false,
        );
        assert!(allowed.is_empty(), "{allowed:?}");
    }

    #[test]
    fn panic_path_only_on_audited_files() {
        let src = "fn f(o: Option<u32>) -> u32 { o.unwrap() }\n\
                   fn g() { unreachable!(\"no\") }\n\
                   fn h(o: Option<u32>) -> u32 { o.unwrap_or_else(|| 0) }";
        let audited = run(src, false, true);
        assert_eq!(audited.len(), 2, "{audited:?}");
        assert!(audited.iter().all(|f| f.rule == "panic-path"));
        assert!(run(src, false, false).is_empty());
    }

    #[test]
    fn findings_are_line_ordered() {
        let src = "fn f() { let t = Instant::now(); }\n\
                   fn g() { let r = thread_rng(); }";
        let f = run(src, false, false);
        assert_eq!(f.len(), 2);
        assert!(f[0].line < f[1].line);
    }
}
