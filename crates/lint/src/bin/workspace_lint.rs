//! `workspace-lint` — the determinism & concurrency source gate.
//!
//! Scans every shipping `.rs` file (`crates/*/src/**`, `src/**`) with the
//! `apres-lint` rule set and reports findings. Exit status is the gate:
//! non-zero on any active finding under `--deny-warnings` (the `just
//! lint-workspace` configuration), or on any stale baseline entry.
//!
//! Flags:
//!
//! * `--json` — emit one JSON object (`files_scanned`, `findings`,
//!   `active`, `diagnostics`, `clean`) instead of text;
//! * `--deny-warnings` — active findings fail the gate (baselined
//!   findings are notes and never gate);
//! * `--baseline FILE` — suppression file, one `path:line:rule` entry
//!   per line (`#` comments allowed); matching findings are demoted to
//!   notes, entries matching nothing are reported as stale;
//! * `--root DIR` — workspace root to scan (default: the current
//!   directory, which is the workspace root under `just`/`cargo run`).

use apres_lint::workspace::{lint_workspace, Baseline};
use gpu_common::json::Json;
use gpu_common::Severity;
use std::path::PathBuf;

fn usage_exit(msg: &str) -> ! {
    eprintln!("workspace-lint: {msg}");
    eprintln!("usage: workspace-lint [--json] [--deny-warnings] [--baseline FILE] [--root DIR]");
    std::process::exit(2);
}

fn main() {
    let mut json = false;
    let mut deny_warnings = false;
    let mut baseline_path: Option<PathBuf> = None;
    let mut root = PathBuf::from(".");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json = true,
            "--deny-warnings" => deny_warnings = true,
            "--baseline" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| usage_exit("--baseline requires a file"));
                baseline_path = Some(PathBuf::from(v));
            }
            "--root" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| usage_exit("--root requires a directory"));
                root = PathBuf::from(v);
            }
            unknown => usage_exit(&format!("unknown flag {unknown}")),
        }
    }

    let baseline = match &baseline_path {
        Some(path) => {
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                usage_exit(&format!("cannot read baseline {}: {e}", path.display()))
            });
            Baseline::parse(&text)
                .unwrap_or_else(|e| usage_exit(&format!("{}: {e}", path.display())))
        }
        None => Baseline::default(),
    };

    let ws = match lint_workspace(&root, &baseline) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("workspace-lint: {e}");
            std::process::exit(2);
        }
    };
    let report = ws.to_report();
    // Stale baseline entries are warnings too, so they gate even though
    // they are not "findings".
    let clean = !report.has_errors()
        && (!deny_warnings || report.count(Severity::Warning) == 0);

    if json {
        let mut obj = match ws.to_json() {
            Json::Obj(fields) => fields,
            other => vec![("report".into(), other)],
        };
        obj.push(("clean".into(), Json::Bool(clean)));
        println!("{}", Json::Obj(obj).to_pretty());
    } else {
        for d in report.diagnostics() {
            println!("{d}");
        }
        println!(
            "{} file(s) scanned: {} finding(s) ({} active, {} baselined), \
             {} stale baseline entr{}",
            ws.files_scanned,
            ws.findings.len(),
            ws.active(),
            ws.findings.len() - ws.active(),
            ws.stale_baseline.len(),
            if ws.stale_baseline.len() == 1 { "y" } else { "ies" },
        );
    }

    if !clean {
        std::process::exit(1);
    }
}
