//! Known-bad source fixtures, one per rule.
//!
//! Mirrors the defective-kernel fixtures of the PR-2 kernel-IR pipeline:
//! each fixture is a minimal source snippet that must produce **exactly
//! one** diagnostic, pinned to its rule ID and line, so a rule that goes
//! quiet (or noisy) fails a test naming the exact regression. A final
//! fixture exercises the escape hatch: the same defect with a
//! `// lint: allow(<rule>)` comment must produce nothing.
//!
//! The snippets live in raw strings, so linting this file itself sees
//! only opaque literals — the corpus cannot flag its own host.

/// One pinned lint fixture.
#[derive(Debug, Clone, Copy)]
pub struct Fixture {
    /// Fixture name (stable, test-facing).
    pub name: &'static str,
    /// Workspace-relative path the snippet pretends to live at — chosen
    /// to exercise the intended scoping (sim crate, audited file).
    pub path: &'static str,
    /// The source snippet.
    pub source: &'static str,
    /// Expected rule ID, or `None` when the fixture must lint clean.
    pub expect_rule: Option<&'static str>,
    /// Expected 1-based line of the finding (0 when `expect_rule` is
    /// `None`).
    pub expect_line: usize,
}

/// The full corpus: seven defective fixtures (at least one per rule) plus
/// two escape-hatch fixtures that must lint clean.
pub fn all() -> Vec<Fixture> {
    vec![
        // The real-tree analogue of this fixture (L1 per-PC stats) was
        // fixed per the flat-vs-ordered policy (DESIGN.md §13): the map
        // became a PC-sorted `Vec<(Pc, PcStats)>` — deterministic
        // iteration *and* a cheaper lookup path than any tree or table.
        Fixture {
            name: "hash-iter-over-stats-map",
            path: "crates/mem/src/fixture.rs",
            source: r#"
use std::collections::HashMap;
pub struct Stats { per_pc: HashMap<u64, u64> }
impl Stats {
    pub fn dump(&self) {
        for (pc, n) in self.per_pc.iter() { println!("{pc} {n}"); }
    }
}
"#,
            expect_rule: Some("hash-iter"),
            expect_line: 6,
        },
        Fixture {
            name: "wall-clock-in-sim",
            path: "crates/sm/src/fixture.rs",
            source: r#"
pub fn stamp() -> std::time::Instant {
    Instant::now()
}
"#,
            expect_rule: Some("wall-clock"),
            expect_line: 3,
        },
        Fixture {
            name: "unseeded-rng-opaque-seed",
            path: "crates/workloads/src/fixture.rs",
            source: r#"
pub fn rng(h: u64) -> Xoshiro256 {
    Xoshiro256::seed_from_u64(h)
}
"#,
            expect_rule: Some("unseeded-rng"),
            expect_line: 3,
        },
        Fixture {
            name: "float-ord-partial-sort",
            path: "crates/prefetch/src/fixture.rs",
            source: r#"
pub fn rank(scores: &mut Vec<(u64, f64)>) {
    scores.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
}
"#,
            expect_rule: Some("float-ord"),
            expect_line: 3,
        },
        Fixture {
            name: "shared-mut-lock-in-sim",
            path: "crates/sched/src/fixture.rs",
            source: r#"
pub struct Scoreboard { slots: std::sync::Mutex<Vec<u64>> }
"#,
            expect_rule: Some("shared-mut"),
            expect_line: 2,
        },
        // Channels are shared-mut in sim crates everywhere except the
        // epoch barrier (crates/sm/src/epoch.rs), whose waivers are
        // counted and pinned by tests/workspace_lint.rs.
        Fixture {
            name: "shared-mut-channel-in-sim",
            path: "crates/mem/src/fixture.rs",
            source: r#"
pub struct FillPath { tx: std::sync::mpsc::Sender<u64> }
"#,
            expect_rule: Some("shared-mut"),
            expect_line: 2,
        },
        Fixture {
            name: "shared-mut-channel-epoch-waiver",
            path: "crates/sm/src/fixture.rs",
            source: r#"
type Tx<T> = std::sync::mpsc::Sender<T>; // lint: allow(shared-mut)
"#,
            expect_rule: None,
            expect_line: 0,
        },
        Fixture {
            name: "panic-path-on-audited-file",
            path: "crates/mem/src/mshr.rs",
            source: r#"
pub fn lookup(table: &[u64], idx: usize) -> u64 {
    *table.get(idx).unwrap()
}
"#,
            expect_rule: Some("panic-path"),
            expect_line: 3,
        },
        Fixture {
            name: "escape-hatch-suppresses",
            path: "crates/sm/src/fixture.rs",
            source: r#"
pub fn stamp() -> std::time::Instant {
    // lint: allow(wall-clock)
    Instant::now()
}
"#,
            expect_rule: None,
            expect_line: 0,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workspace::lint_source;

    #[test]
    fn every_fixture_pins_exactly_its_diagnostic() {
        for fx in all() {
            let findings = lint_source(fx.path, fx.source);
            match fx.expect_rule {
                Some(rule) => {
                    assert_eq!(
                        findings.len(),
                        1,
                        "fixture `{}` must produce exactly one finding, got {findings:?}",
                        fx.name
                    );
                    assert_eq!(findings[0].rule, rule, "fixture `{}`", fx.name);
                    assert_eq!(findings[0].line, fx.expect_line, "fixture `{}`", fx.name);
                    assert!(
                        !findings[0].hint.is_empty(),
                        "fixture `{}`: every rule ships a fix-it hint",
                        fx.name
                    );
                }
                None => {
                    assert!(
                        findings.is_empty(),
                        "fixture `{}` must lint clean, got {findings:?}",
                        fx.name
                    );
                }
            }
        }
    }

    #[test]
    fn corpus_covers_every_rule() {
        let covered: Vec<_> = all().iter().filter_map(|f| f.expect_rule).collect();
        for rule in crate::rules::RULE_IDS {
            assert!(covered.contains(rule), "no fixture for rule `{rule}`");
        }
    }

    #[test]
    fn fixtures_surface_as_warnings_in_a_report() {
        use crate::workspace::{Located, WorkspaceReport};
        use gpu_common::Severity;
        let mut findings = Vec::new();
        for fx in all() {
            for finding in lint_source(fx.path, fx.source) {
                findings.push(Located {
                    path: fx.path.to_owned(),
                    finding,
                    baselined: false,
                });
            }
        }
        let report = WorkspaceReport {
            files_scanned: all().len(),
            findings,
            stale_baseline: Vec::new(),
        };
        let diag = report.to_report();
        assert_eq!(diag.count(Severity::Warning), 7);
        assert!(!diag.is_clean());
        assert!(!diag.has_errors(), "lint findings are warnings, not errors");
    }
}
