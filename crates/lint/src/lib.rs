//! `apres-lint` — workspace determinism & concurrency static analysis.
//!
//! ROADMAP item 1 (epoch-parallel multi-SM simulation) is only viable if
//! the simulator's byte-identical-output guarantee survives threading,
//! and that guarantee dies quietly: a `HashMap` iteration here, a raw
//! `Instant::now()` there, and the output starts depending on
//! `RandomState` or the wall clock instead of the seed. This crate is
//! the static auditor for those hazards — the same role the PR-2
//! kernel-IR pipeline plays for kernel specs, pointed at our own source.
//!
//! The pass is std-only (the build is offline, so no `syn`): a
//! lightweight lexer ([`lexer`]) produces a token stream with full
//! string/comment/`#[cfg(test)]` awareness, and six semantic rules
//! ([`rules`]) walk it:
//!
//! * `hash-iter` — iteration over std `HashMap`/`HashSet` in simulator
//!   code (order is per-process random);
//! * `wall-clock` — `Instant::now`/`SystemTime` outside
//!   `gpu_common::clock` and the harness's TTY progress path;
//! * `unseeded-rng` — RNG construction not derived from
//!   `derive_seed`/an explicit seed;
//! * `float-ord` — partial orders (`partial_cmp`) where total orders
//!   are required;
//! * `shared-mut` — `static mut` anywhere; locks and `Relaxed` atomics
//!   in simulator crates;
//! * `panic-path` — panicking escape hatches on the audited critical
//!   paths (supersedes the old grep-based integration test).
//!
//! Findings are emitted as `gpu_common::diag::{Diagnostic, Report}` and
//! surfaced by the `workspace-lint` binary (text/JSON, `--deny-warnings`,
//! `--baseline`), wired as `just lint-workspace` inside `just check`.
//! Every rule has an in-source escape hatch — `// lint: allow(<rule>)`
//! on the finding's line or the line above — so a deliberate exception
//! is visible in the diff that introduces it, not in a side file.
//! [`fixtures`] pins each rule to a known-bad snippet; a workspace
//! self-test asserts the shipped tree is clean with an empty baseline.

#![deny(missing_docs)]

pub mod fixtures;
pub mod lexer;
pub mod rules;
pub mod workspace;

pub use rules::{Finding, RULE_IDS};
pub use workspace::{lint_source, lint_workspace, Baseline, Located, WorkspaceReport};
