/root/repo/target/debug/deps/gpu_sm-b8fdbc4e03f992ed.d: /root/repo/clippy.toml crates/sm/src/lib.rs crates/sm/src/gpu.rs crates/sm/src/lsu.rs crates/sm/src/sm.rs crates/sm/src/trace.rs crates/sm/src/traits.rs Cargo.toml

/root/repo/target/debug/deps/libgpu_sm-b8fdbc4e03f992ed.rmeta: /root/repo/clippy.toml crates/sm/src/lib.rs crates/sm/src/gpu.rs crates/sm/src/lsu.rs crates/sm/src/sm.rs crates/sm/src/trace.rs crates/sm/src/traits.rs Cargo.toml

/root/repo/clippy.toml:
crates/sm/src/lib.rs:
crates/sm/src/gpu.rs:
crates/sm/src/lsu.rs:
crates/sm/src/sm.rs:
crates/sm/src/trace.rs:
crates/sm/src/traits.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
