/root/repo/target/debug/deps/fig3-2e9136e31244f4a4.d: /root/repo/clippy.toml crates/bench/src/bin/fig3.rs Cargo.toml

/root/repo/target/debug/deps/libfig3-2e9136e31244f4a4.rmeta: /root/repo/clippy.toml crates/bench/src/bin/fig3.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/fig3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
