/root/repo/target/debug/deps/fault_injection-ffed64ee82559800.d: /root/repo/clippy.toml tests/fault_injection.rs Cargo.toml

/root/repo/target/debug/deps/libfault_injection-ffed64ee82559800.rmeta: /root/repo/clippy.toml tests/fault_injection.rs Cargo.toml

/root/repo/clippy.toml:
tests/fault_injection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
