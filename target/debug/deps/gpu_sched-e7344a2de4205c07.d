/root/repo/target/debug/deps/gpu_sched-e7344a2de4205c07.d: crates/sched/src/lib.rs crates/sched/src/ccws.rs crates/sched/src/gto.rs crates/sched/src/lrr.rs crates/sched/src/mascar.rs crates/sched/src/pa.rs crates/sched/src/two_level.rs

/root/repo/target/debug/deps/gpu_sched-e7344a2de4205c07: crates/sched/src/lib.rs crates/sched/src/ccws.rs crates/sched/src/gto.rs crates/sched/src/lrr.rs crates/sched/src/mascar.rs crates/sched/src/pa.rs crates/sched/src/two_level.rs

crates/sched/src/lib.rs:
crates/sched/src/ccws.rs:
crates/sched/src/gto.rs:
crates/sched/src/lrr.rs:
crates/sched/src/mascar.rs:
crates/sched/src/pa.rs:
crates/sched/src/two_level.rs:
