/root/repo/target/debug/deps/gpu_kernel-8d4634ae9ceeb03a.d: /root/repo/clippy.toml crates/kernel/src/lib.rs crates/kernel/src/instr.rs crates/kernel/src/kernel.rs crates/kernel/src/pattern.rs crates/kernel/src/simt.rs crates/kernel/src/warp.rs Cargo.toml

/root/repo/target/debug/deps/libgpu_kernel-8d4634ae9ceeb03a.rmeta: /root/repo/clippy.toml crates/kernel/src/lib.rs crates/kernel/src/instr.rs crates/kernel/src/kernel.rs crates/kernel/src/pattern.rs crates/kernel/src/simt.rs crates/kernel/src/warp.rs Cargo.toml

/root/repo/clippy.toml:
crates/kernel/src/lib.rs:
crates/kernel/src/instr.rs:
crates/kernel/src/kernel.rs:
crates/kernel/src/pattern.rs:
crates/kernel/src/simt.rs:
crates/kernel/src/warp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
