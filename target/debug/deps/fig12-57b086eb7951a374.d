/root/repo/target/debug/deps/fig12-57b086eb7951a374.d: crates/bench/src/bin/fig12.rs

/root/repo/target/debug/deps/fig12-57b086eb7951a374: crates/bench/src/bin/fig12.rs

crates/bench/src/bin/fig12.rs:
