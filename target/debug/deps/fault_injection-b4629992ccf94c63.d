/root/repo/target/debug/deps/fault_injection-b4629992ccf94c63.d: tests/fault_injection.rs

/root/repo/target/debug/deps/fault_injection-b4629992ccf94c63: tests/fault_injection.rs

tests/fault_injection.rs:
