/root/repo/target/debug/deps/paper_claims-0b4756363c87a3d5.d: /root/repo/clippy.toml tests/paper_claims.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_claims-0b4756363c87a3d5.rmeta: /root/repo/clippy.toml tests/paper_claims.rs Cargo.toml

/root/repo/clippy.toml:
tests/paper_claims.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
