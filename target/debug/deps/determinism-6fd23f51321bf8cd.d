/root/repo/target/debug/deps/determinism-6fd23f51321bf8cd.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-6fd23f51321bf8cd: tests/determinism.rs

tests/determinism.rs:
