/root/repo/target/debug/deps/conservation-37df814f1a3af01f.d: /root/repo/clippy.toml tests/conservation.rs Cargo.toml

/root/repo/target/debug/deps/libconservation-37df814f1a3af01f.rmeta: /root/repo/clippy.toml tests/conservation.rs Cargo.toml

/root/repo/clippy.toml:
tests/conservation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
