/root/repo/target/debug/deps/table1-f64f107428b3bbd6.d: /root/repo/clippy.toml crates/bench/src/bin/table1.rs Cargo.toml

/root/repo/target/debug/deps/libtable1-f64f107428b3bbd6.rmeta: /root/repo/clippy.toml crates/bench/src/bin/table1.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/table1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
