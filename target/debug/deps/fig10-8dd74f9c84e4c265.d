/root/repo/target/debug/deps/fig10-8dd74f9c84e4c265.d: crates/bench/src/bin/fig10.rs

/root/repo/target/debug/deps/fig10-8dd74f9c84e4c265: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
