/root/repo/target/debug/deps/probe-cfb2a63d64e3e5b3.d: crates/bench/src/bin/probe.rs

/root/repo/target/debug/deps/probe-cfb2a63d64e3e5b3: crates/bench/src/bin/probe.rs

crates/bench/src/bin/probe.rs:
