/root/repo/target/debug/deps/diag-a9cd27d43827ad64.d: /root/repo/clippy.toml crates/bench/src/bin/diag.rs Cargo.toml

/root/repo/target/debug/deps/libdiag-a9cd27d43827ad64.rmeta: /root/repo/clippy.toml crates/bench/src/bin/diag.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/diag.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
