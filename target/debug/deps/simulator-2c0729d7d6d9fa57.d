/root/repo/target/debug/deps/simulator-2c0729d7d6d9fa57.d: /root/repo/clippy.toml crates/bench/benches/simulator.rs Cargo.toml

/root/repo/target/debug/deps/libsimulator-2c0729d7d6d9fa57.rmeta: /root/repo/clippy.toml crates/bench/benches/simulator.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/benches/simulator.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
