/root/repo/target/debug/deps/gpu_workloads-0c232570e3d5ea7b.d: /root/repo/clippy.toml crates/workloads/src/lib.rs crates/workloads/src/benchmarks.rs crates/workloads/src/characterize.rs crates/workloads/src/fidelity.rs crates/workloads/src/spec.rs Cargo.toml

/root/repo/target/debug/deps/libgpu_workloads-0c232570e3d5ea7b.rmeta: /root/repo/clippy.toml crates/workloads/src/lib.rs crates/workloads/src/benchmarks.rs crates/workloads/src/characterize.rs crates/workloads/src/fidelity.rs crates/workloads/src/spec.rs Cargo.toml

/root/repo/clippy.toml:
crates/workloads/src/lib.rs:
crates/workloads/src/benchmarks.rs:
crates/workloads/src/characterize.rs:
crates/workloads/src/fidelity.rs:
crates/workloads/src/spec.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
