/root/repo/target/debug/deps/apres-f8947ce00bae5350.d: /root/repo/clippy.toml src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libapres-f8947ce00bae5350.rmeta: /root/repo/clippy.toml src/lib.rs Cargo.toml

/root/repo/clippy.toml:
src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
