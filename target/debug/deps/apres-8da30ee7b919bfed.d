/root/repo/target/debug/deps/apres-8da30ee7b919bfed.d: src/lib.rs

/root/repo/target/debug/deps/libapres-8da30ee7b919bfed.rlib: src/lib.rs

/root/repo/target/debug/deps/libapres-8da30ee7b919bfed.rmeta: src/lib.rs

src/lib.rs:
