/root/repo/target/debug/deps/determinism-a6361e284df00e31.d: /root/repo/clippy.toml tests/determinism.rs Cargo.toml

/root/repo/target/debug/deps/libdeterminism-a6361e284df00e31.rmeta: /root/repo/clippy.toml tests/determinism.rs Cargo.toml

/root/repo/clippy.toml:
tests/determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
