/root/repo/target/debug/deps/fig4-b0ca435bbf676391.d: /root/repo/clippy.toml crates/bench/src/bin/fig4.rs Cargo.toml

/root/repo/target/debug/deps/libfig4-b0ca435bbf676391.rmeta: /root/repo/clippy.toml crates/bench/src/bin/fig4.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/fig4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
