/root/repo/target/debug/deps/gpu_sm-d8f51fe216a54872.d: crates/sm/src/lib.rs crates/sm/src/gpu.rs crates/sm/src/lsu.rs crates/sm/src/sm.rs crates/sm/src/trace.rs crates/sm/src/traits.rs

/root/repo/target/debug/deps/gpu_sm-d8f51fe216a54872: crates/sm/src/lib.rs crates/sm/src/gpu.rs crates/sm/src/lsu.rs crates/sm/src/sm.rs crates/sm/src/trace.rs crates/sm/src/traits.rs

crates/sm/src/lib.rs:
crates/sm/src/gpu.rs:
crates/sm/src/lsu.rs:
crates/sm/src/sm.rs:
crates/sm/src/trace.rs:
crates/sm/src/traits.rs:
