/root/repo/target/debug/deps/fig4-5424981a6c950e58.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-5424981a6c950e58: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
