/root/repo/target/debug/deps/fig2-65f300c567837e1c.d: crates/bench/src/bin/fig2.rs

/root/repo/target/debug/deps/fig2-65f300c567837e1c: crates/bench/src/bin/fig2.rs

crates/bench/src/bin/fig2.rs:
