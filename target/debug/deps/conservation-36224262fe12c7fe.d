/root/repo/target/debug/deps/conservation-36224262fe12c7fe.d: tests/conservation.rs

/root/repo/target/debug/deps/conservation-36224262fe12c7fe: tests/conservation.rs

tests/conservation.rs:
