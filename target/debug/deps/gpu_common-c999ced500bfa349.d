/root/repo/target/debug/deps/gpu_common-c999ced500bfa349.d: crates/common/src/lib.rs crates/common/src/check.rs crates/common/src/config.rs crates/common/src/error.rs crates/common/src/fault.rs crates/common/src/ids.rs crates/common/src/json.rs crates/common/src/rng.rs crates/common/src/stats.rs

/root/repo/target/debug/deps/gpu_common-c999ced500bfa349: crates/common/src/lib.rs crates/common/src/check.rs crates/common/src/config.rs crates/common/src/error.rs crates/common/src/fault.rs crates/common/src/ids.rs crates/common/src/json.rs crates/common/src/rng.rs crates/common/src/stats.rs

crates/common/src/lib.rs:
crates/common/src/check.rs:
crates/common/src/config.rs:
crates/common/src/error.rs:
crates/common/src/fault.rs:
crates/common/src/ids.rs:
crates/common/src/json.rs:
crates/common/src/rng.rs:
crates/common/src/stats.rs:
