/root/repo/target/debug/deps/bypass_study-1a3101531cd83c1c.d: crates/bench/src/bin/bypass_study.rs

/root/repo/target/debug/deps/bypass_study-1a3101531cd83c1c: crates/bench/src/bin/bypass_study.rs

crates/bench/src/bin/bypass_study.rs:
