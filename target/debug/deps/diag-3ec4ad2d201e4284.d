/root/repo/target/debug/deps/diag-3ec4ad2d201e4284.d: /root/repo/clippy.toml crates/bench/src/bin/diag.rs Cargo.toml

/root/repo/target/debug/deps/libdiag-3ec4ad2d201e4284.rmeta: /root/repo/clippy.toml crates/bench/src/bin/diag.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/diag.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
