/root/repo/target/debug/deps/table3-e5938a603e199cf9.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-e5938a603e199cf9: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
