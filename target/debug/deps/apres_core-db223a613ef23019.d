/root/repo/target/debug/deps/apres_core-db223a613ef23019.d: crates/core/src/lib.rs crates/core/src/energy.rs crates/core/src/hw_cost.rs crates/core/src/laws.rs crates/core/src/sap.rs crates/core/src/sim.rs

/root/repo/target/debug/deps/apres_core-db223a613ef23019: crates/core/src/lib.rs crates/core/src/energy.rs crates/core/src/hw_cost.rs crates/core/src/laws.rs crates/core/src/sap.rs crates/core/src/sim.rs

crates/core/src/lib.rs:
crates/core/src/energy.rs:
crates/core/src/hw_cost.rs:
crates/core/src/laws.rs:
crates/core/src/sap.rs:
crates/core/src/sim.rs:
