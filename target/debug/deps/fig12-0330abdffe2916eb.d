/root/repo/target/debug/deps/fig12-0330abdffe2916eb.d: /root/repo/clippy.toml crates/bench/src/bin/fig12.rs Cargo.toml

/root/repo/target/debug/deps/libfig12-0330abdffe2916eb.rmeta: /root/repo/clippy.toml crates/bench/src/bin/fig12.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/fig12.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
