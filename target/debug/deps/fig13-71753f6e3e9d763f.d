/root/repo/target/debug/deps/fig13-71753f6e3e9d763f.d: /root/repo/clippy.toml crates/bench/src/bin/fig13.rs Cargo.toml

/root/repo/target/debug/deps/libfig13-71753f6e3e9d763f.rmeta: /root/repo/clippy.toml crates/bench/src/bin/fig13.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/fig13.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
