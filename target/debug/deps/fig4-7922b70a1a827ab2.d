/root/repo/target/debug/deps/fig4-7922b70a1a827ab2.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-7922b70a1a827ab2: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
