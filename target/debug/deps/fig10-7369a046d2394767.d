/root/repo/target/debug/deps/fig10-7369a046d2394767.d: crates/bench/src/bin/fig10.rs

/root/repo/target/debug/deps/fig10-7369a046d2394767: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
