/root/repo/target/debug/deps/diag-6c6de181f03328aa.d: crates/bench/src/bin/diag.rs

/root/repo/target/debug/deps/diag-6c6de181f03328aa: crates/bench/src/bin/diag.rs

crates/bench/src/bin/diag.rs:
