/root/repo/target/debug/deps/fig14-a58c423d611e7d69.d: crates/bench/src/bin/fig14.rs

/root/repo/target/debug/deps/fig14-a58c423d611e7d69: crates/bench/src/bin/fig14.rs

crates/bench/src/bin/fig14.rs:
