/root/repo/target/debug/deps/ablation_substrate-7f4bf75277f9e21d.d: /root/repo/clippy.toml crates/bench/src/bin/ablation_substrate.rs Cargo.toml

/root/repo/target/debug/deps/libablation_substrate-7f4bf75277f9e21d.rmeta: /root/repo/clippy.toml crates/bench/src/bin/ablation_substrate.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/ablation_substrate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
