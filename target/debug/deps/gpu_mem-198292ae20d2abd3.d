/root/repo/target/debug/deps/gpu_mem-198292ae20d2abd3.d: crates/mem/src/lib.rs crates/mem/src/bypass.rs crates/mem/src/cache.rs crates/mem/src/classify.rs crates/mem/src/coalesce.rs crates/mem/src/dram.rs crates/mem/src/l1.rs crates/mem/src/l2.rs crates/mem/src/memsys.rs crates/mem/src/mshr.rs crates/mem/src/noc.rs crates/mem/src/prefetch_meta.rs crates/mem/src/request.rs

/root/repo/target/debug/deps/gpu_mem-198292ae20d2abd3: crates/mem/src/lib.rs crates/mem/src/bypass.rs crates/mem/src/cache.rs crates/mem/src/classify.rs crates/mem/src/coalesce.rs crates/mem/src/dram.rs crates/mem/src/l1.rs crates/mem/src/l2.rs crates/mem/src/memsys.rs crates/mem/src/mshr.rs crates/mem/src/noc.rs crates/mem/src/prefetch_meta.rs crates/mem/src/request.rs

crates/mem/src/lib.rs:
crates/mem/src/bypass.rs:
crates/mem/src/cache.rs:
crates/mem/src/classify.rs:
crates/mem/src/coalesce.rs:
crates/mem/src/dram.rs:
crates/mem/src/l1.rs:
crates/mem/src/l2.rs:
crates/mem/src/memsys.rs:
crates/mem/src/mshr.rs:
crates/mem/src/noc.rs:
crates/mem/src/prefetch_meta.rs:
crates/mem/src/request.rs:
