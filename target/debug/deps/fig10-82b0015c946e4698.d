/root/repo/target/debug/deps/fig10-82b0015c946e4698.d: /root/repo/clippy.toml crates/bench/src/bin/fig10.rs Cargo.toml

/root/repo/target/debug/deps/libfig10-82b0015c946e4698.rmeta: /root/repo/clippy.toml crates/bench/src/bin/fig10.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/fig10.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
