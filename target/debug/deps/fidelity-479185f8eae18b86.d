/root/repo/target/debug/deps/fidelity-479185f8eae18b86.d: /root/repo/clippy.toml crates/bench/src/bin/fidelity.rs Cargo.toml

/root/repo/target/debug/deps/libfidelity-479185f8eae18b86.rmeta: /root/repo/clippy.toml crates/bench/src/bin/fidelity.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/fidelity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
