/root/repo/target/debug/deps/gpu_common-d6f4826c424a100e.d: crates/common/src/lib.rs crates/common/src/check.rs crates/common/src/config.rs crates/common/src/error.rs crates/common/src/fault.rs crates/common/src/ids.rs crates/common/src/json.rs crates/common/src/rng.rs crates/common/src/stats.rs

/root/repo/target/debug/deps/libgpu_common-d6f4826c424a100e.rlib: crates/common/src/lib.rs crates/common/src/check.rs crates/common/src/config.rs crates/common/src/error.rs crates/common/src/fault.rs crates/common/src/ids.rs crates/common/src/json.rs crates/common/src/rng.rs crates/common/src/stats.rs

/root/repo/target/debug/deps/libgpu_common-d6f4826c424a100e.rmeta: crates/common/src/lib.rs crates/common/src/check.rs crates/common/src/config.rs crates/common/src/error.rs crates/common/src/fault.rs crates/common/src/ids.rs crates/common/src/json.rs crates/common/src/rng.rs crates/common/src/stats.rs

crates/common/src/lib.rs:
crates/common/src/check.rs:
crates/common/src/config.rs:
crates/common/src/error.rs:
crates/common/src/fault.rs:
crates/common/src/ids.rs:
crates/common/src/json.rs:
crates/common/src/rng.rs:
crates/common/src/stats.rs:
