/root/repo/target/debug/deps/gpu_sched-a75ddc1655e63588.d: crates/sched/src/lib.rs crates/sched/src/ccws.rs crates/sched/src/gto.rs crates/sched/src/lrr.rs crates/sched/src/mascar.rs crates/sched/src/pa.rs crates/sched/src/two_level.rs

/root/repo/target/debug/deps/libgpu_sched-a75ddc1655e63588.rlib: crates/sched/src/lib.rs crates/sched/src/ccws.rs crates/sched/src/gto.rs crates/sched/src/lrr.rs crates/sched/src/mascar.rs crates/sched/src/pa.rs crates/sched/src/two_level.rs

/root/repo/target/debug/deps/libgpu_sched-a75ddc1655e63588.rmeta: crates/sched/src/lib.rs crates/sched/src/ccws.rs crates/sched/src/gto.rs crates/sched/src/lrr.rs crates/sched/src/mascar.rs crates/sched/src/pa.rs crates/sched/src/two_level.rs

crates/sched/src/lib.rs:
crates/sched/src/ccws.rs:
crates/sched/src/gto.rs:
crates/sched/src/lrr.rs:
crates/sched/src/mascar.rs:
crates/sched/src/pa.rs:
crates/sched/src/two_level.rs:
