/root/repo/target/debug/deps/fig15-2a7a2df62bb2c0ff.d: crates/bench/src/bin/fig15.rs

/root/repo/target/debug/deps/fig15-2a7a2df62bb2c0ff: crates/bench/src/bin/fig15.rs

crates/bench/src/bin/fig15.rs:
