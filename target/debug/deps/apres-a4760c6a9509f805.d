/root/repo/target/debug/deps/apres-a4760c6a9509f805.d: src/lib.rs

/root/repo/target/debug/deps/apres-a4760c6a9509f805: src/lib.rs

src/lib.rs:
