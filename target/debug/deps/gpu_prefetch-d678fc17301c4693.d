/root/repo/target/debug/deps/gpu_prefetch-d678fc17301c4693.d: crates/prefetch/src/lib.rs crates/prefetch/src/sld.rs crates/prefetch/src/str_prefetch.rs

/root/repo/target/debug/deps/libgpu_prefetch-d678fc17301c4693.rlib: crates/prefetch/src/lib.rs crates/prefetch/src/sld.rs crates/prefetch/src/str_prefetch.rs

/root/repo/target/debug/deps/libgpu_prefetch-d678fc17301c4693.rmeta: crates/prefetch/src/lib.rs crates/prefetch/src/sld.rs crates/prefetch/src/str_prefetch.rs

crates/prefetch/src/lib.rs:
crates/prefetch/src/sld.rs:
crates/prefetch/src/str_prefetch.rs:
