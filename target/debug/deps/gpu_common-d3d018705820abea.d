/root/repo/target/debug/deps/gpu_common-d3d018705820abea.d: /root/repo/clippy.toml crates/common/src/lib.rs crates/common/src/check.rs crates/common/src/config.rs crates/common/src/error.rs crates/common/src/fault.rs crates/common/src/ids.rs crates/common/src/json.rs crates/common/src/rng.rs crates/common/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libgpu_common-d3d018705820abea.rmeta: /root/repo/clippy.toml crates/common/src/lib.rs crates/common/src/check.rs crates/common/src/config.rs crates/common/src/error.rs crates/common/src/fault.rs crates/common/src/ids.rs crates/common/src/json.rs crates/common/src/rng.rs crates/common/src/stats.rs Cargo.toml

/root/repo/clippy.toml:
crates/common/src/lib.rs:
crates/common/src/check.rs:
crates/common/src/config.rs:
crates/common/src/error.rs:
crates/common/src/fault.rs:
crates/common/src/ids.rs:
crates/common/src/json.rs:
crates/common/src/rng.rs:
crates/common/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
