/root/repo/target/debug/deps/probe-5519998cf6ae0557.d: /root/repo/clippy.toml crates/bench/src/bin/probe.rs Cargo.toml

/root/repo/target/debug/deps/libprobe-5519998cf6ae0557.rmeta: /root/repo/clippy.toml crates/bench/src/bin/probe.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/probe.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
