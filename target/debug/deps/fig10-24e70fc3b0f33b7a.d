/root/repo/target/debug/deps/fig10-24e70fc3b0f33b7a.d: /root/repo/clippy.toml crates/bench/src/bin/fig10.rs Cargo.toml

/root/repo/target/debug/deps/libfig10-24e70fc3b0f33b7a.rmeta: /root/repo/clippy.toml crates/bench/src/bin/fig10.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/fig10.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
