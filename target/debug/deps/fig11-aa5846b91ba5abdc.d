/root/repo/target/debug/deps/fig11-aa5846b91ba5abdc.d: crates/bench/src/bin/fig11.rs

/root/repo/target/debug/deps/fig11-aa5846b91ba5abdc: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
