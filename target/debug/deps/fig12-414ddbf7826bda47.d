/root/repo/target/debug/deps/fig12-414ddbf7826bda47.d: crates/bench/src/bin/fig12.rs

/root/repo/target/debug/deps/fig12-414ddbf7826bda47: crates/bench/src/bin/fig12.rs

crates/bench/src/bin/fig12.rs:
