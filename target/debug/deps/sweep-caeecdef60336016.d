/root/repo/target/debug/deps/sweep-caeecdef60336016.d: crates/bench/src/bin/sweep.rs

/root/repo/target/debug/deps/sweep-caeecdef60336016: crates/bench/src/bin/sweep.rs

crates/bench/src/bin/sweep.rs:
