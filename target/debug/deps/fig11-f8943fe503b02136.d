/root/repo/target/debug/deps/fig11-f8943fe503b02136.d: /root/repo/clippy.toml crates/bench/src/bin/fig11.rs Cargo.toml

/root/repo/target/debug/deps/libfig11-f8943fe503b02136.rmeta: /root/repo/clippy.toml crates/bench/src/bin/fig11.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/fig11.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
