/root/repo/target/debug/deps/property_sim-403f478d559f183f.d: /root/repo/clippy.toml tests/property_sim.rs Cargo.toml

/root/repo/target/debug/deps/libproperty_sim-403f478d559f183f.rmeta: /root/repo/clippy.toml tests/property_sim.rs Cargo.toml

/root/repo/clippy.toml:
tests/property_sim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
