/root/repo/target/debug/deps/table3-8631c303d4c3ac64.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-8631c303d4c3ac64: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
