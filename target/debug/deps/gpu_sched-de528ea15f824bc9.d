/root/repo/target/debug/deps/gpu_sched-de528ea15f824bc9.d: /root/repo/clippy.toml crates/sched/src/lib.rs crates/sched/src/ccws.rs crates/sched/src/gto.rs crates/sched/src/lrr.rs crates/sched/src/mascar.rs crates/sched/src/pa.rs crates/sched/src/two_level.rs Cargo.toml

/root/repo/target/debug/deps/libgpu_sched-de528ea15f824bc9.rmeta: /root/repo/clippy.toml crates/sched/src/lib.rs crates/sched/src/ccws.rs crates/sched/src/gto.rs crates/sched/src/lrr.rs crates/sched/src/mascar.rs crates/sched/src/pa.rs crates/sched/src/two_level.rs Cargo.toml

/root/repo/clippy.toml:
crates/sched/src/lib.rs:
crates/sched/src/ccws.rs:
crates/sched/src/gto.rs:
crates/sched/src/lrr.rs:
crates/sched/src/mascar.rs:
crates/sched/src/pa.rs:
crates/sched/src/two_level.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
