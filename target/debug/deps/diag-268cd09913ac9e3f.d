/root/repo/target/debug/deps/diag-268cd09913ac9e3f.d: crates/bench/src/bin/diag.rs

/root/repo/target/debug/deps/diag-268cd09913ac9e3f: crates/bench/src/bin/diag.rs

crates/bench/src/bin/diag.rs:
