/root/repo/target/debug/deps/paper_claims-2d5132b0f0156e29.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-2d5132b0f0156e29: tests/paper_claims.rs

tests/paper_claims.rs:
