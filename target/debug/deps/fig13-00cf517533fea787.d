/root/repo/target/debug/deps/fig13-00cf517533fea787.d: crates/bench/src/bin/fig13.rs

/root/repo/target/debug/deps/fig13-00cf517533fea787: crates/bench/src/bin/fig13.rs

crates/bench/src/bin/fig13.rs:
