/root/repo/target/debug/deps/fig2-7a0743892e8c2094.d: crates/bench/src/bin/fig2.rs

/root/repo/target/debug/deps/fig2-7a0743892e8c2094: crates/bench/src/bin/fig2.rs

crates/bench/src/bin/fig2.rs:
