/root/repo/target/debug/deps/fig2-d6a987b7f1090bc0.d: /root/repo/clippy.toml crates/bench/src/bin/fig2.rs Cargo.toml

/root/repo/target/debug/deps/libfig2-d6a987b7f1090bc0.rmeta: /root/repo/clippy.toml crates/bench/src/bin/fig2.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/fig2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
