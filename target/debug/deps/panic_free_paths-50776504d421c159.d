/root/repo/target/debug/deps/panic_free_paths-50776504d421c159.d: tests/panic_free_paths.rs

/root/repo/target/debug/deps/panic_free_paths-50776504d421c159: tests/panic_free_paths.rs

tests/panic_free_paths.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
