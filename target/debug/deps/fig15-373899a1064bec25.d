/root/repo/target/debug/deps/fig15-373899a1064bec25.d: crates/bench/src/bin/fig15.rs

/root/repo/target/debug/deps/fig15-373899a1064bec25: crates/bench/src/bin/fig15.rs

crates/bench/src/bin/fig15.rs:
