/root/repo/target/debug/deps/gpu_workloads-a9d5998d5949d566.d: crates/workloads/src/lib.rs crates/workloads/src/benchmarks.rs crates/workloads/src/characterize.rs crates/workloads/src/fidelity.rs crates/workloads/src/spec.rs

/root/repo/target/debug/deps/libgpu_workloads-a9d5998d5949d566.rlib: crates/workloads/src/lib.rs crates/workloads/src/benchmarks.rs crates/workloads/src/characterize.rs crates/workloads/src/fidelity.rs crates/workloads/src/spec.rs

/root/repo/target/debug/deps/libgpu_workloads-a9d5998d5949d566.rmeta: crates/workloads/src/lib.rs crates/workloads/src/benchmarks.rs crates/workloads/src/characterize.rs crates/workloads/src/fidelity.rs crates/workloads/src/spec.rs

crates/workloads/src/lib.rs:
crates/workloads/src/benchmarks.rs:
crates/workloads/src/characterize.rs:
crates/workloads/src/fidelity.rs:
crates/workloads/src/spec.rs:
