/root/repo/target/debug/deps/table1-e3591568b683f899.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-e3591568b683f899: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
