/root/repo/target/debug/deps/fidelity-e95ed2763f91de5a.d: crates/bench/src/bin/fidelity.rs

/root/repo/target/debug/deps/fidelity-e95ed2763f91de5a: crates/bench/src/bin/fidelity.rs

crates/bench/src/bin/fidelity.rs:
