/root/repo/target/debug/deps/gpu_prefetch-e7db342e89cb35e5.d: crates/prefetch/src/lib.rs crates/prefetch/src/sld.rs crates/prefetch/src/str_prefetch.rs

/root/repo/target/debug/deps/gpu_prefetch-e7db342e89cb35e5: crates/prefetch/src/lib.rs crates/prefetch/src/sld.rs crates/prefetch/src/str_prefetch.rs

crates/prefetch/src/lib.rs:
crates/prefetch/src/sld.rs:
crates/prefetch/src/str_prefetch.rs:
