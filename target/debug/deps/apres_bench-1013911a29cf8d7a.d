/root/repo/target/debug/deps/apres_bench-1013911a29cf8d7a.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libapres_bench-1013911a29cf8d7a.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libapres_bench-1013911a29cf8d7a.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
