/root/repo/target/debug/deps/gpu_mem-1d96533f392d1efa.d: /root/repo/clippy.toml crates/mem/src/lib.rs crates/mem/src/bypass.rs crates/mem/src/cache.rs crates/mem/src/classify.rs crates/mem/src/coalesce.rs crates/mem/src/dram.rs crates/mem/src/l1.rs crates/mem/src/l2.rs crates/mem/src/memsys.rs crates/mem/src/mshr.rs crates/mem/src/noc.rs crates/mem/src/prefetch_meta.rs crates/mem/src/request.rs Cargo.toml

/root/repo/target/debug/deps/libgpu_mem-1d96533f392d1efa.rmeta: /root/repo/clippy.toml crates/mem/src/lib.rs crates/mem/src/bypass.rs crates/mem/src/cache.rs crates/mem/src/classify.rs crates/mem/src/coalesce.rs crates/mem/src/dram.rs crates/mem/src/l1.rs crates/mem/src/l2.rs crates/mem/src/memsys.rs crates/mem/src/mshr.rs crates/mem/src/noc.rs crates/mem/src/prefetch_meta.rs crates/mem/src/request.rs Cargo.toml

/root/repo/clippy.toml:
crates/mem/src/lib.rs:
crates/mem/src/bypass.rs:
crates/mem/src/cache.rs:
crates/mem/src/classify.rs:
crates/mem/src/coalesce.rs:
crates/mem/src/dram.rs:
crates/mem/src/l1.rs:
crates/mem/src/l2.rs:
crates/mem/src/memsys.rs:
crates/mem/src/mshr.rs:
crates/mem/src/noc.rs:
crates/mem/src/prefetch_meta.rs:
crates/mem/src/request.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
