/root/repo/target/debug/deps/simulator-a8b8c6ce45bc4cbb.d: crates/bench/benches/simulator.rs

/root/repo/target/debug/deps/simulator-a8b8c6ce45bc4cbb: crates/bench/benches/simulator.rs

crates/bench/benches/simulator.rs:
