/root/repo/target/debug/deps/apres_bench-9d496a55b96e912e.d: /root/repo/clippy.toml crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libapres_bench-9d496a55b96e912e.rmeta: /root/repo/clippy.toml crates/bench/src/lib.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
