/root/repo/target/debug/deps/ablation_apres-6b5c3d69bc408612.d: crates/bench/src/bin/ablation_apres.rs

/root/repo/target/debug/deps/ablation_apres-6b5c3d69bc408612: crates/bench/src/bin/ablation_apres.rs

crates/bench/src/bin/ablation_apres.rs:
