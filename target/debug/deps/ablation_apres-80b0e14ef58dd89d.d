/root/repo/target/debug/deps/ablation_apres-80b0e14ef58dd89d.d: crates/bench/src/bin/ablation_apres.rs

/root/repo/target/debug/deps/ablation_apres-80b0e14ef58dd89d: crates/bench/src/bin/ablation_apres.rs

crates/bench/src/bin/ablation_apres.rs:
