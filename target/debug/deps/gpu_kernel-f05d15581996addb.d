/root/repo/target/debug/deps/gpu_kernel-f05d15581996addb.d: /root/repo/clippy.toml crates/kernel/src/lib.rs crates/kernel/src/instr.rs crates/kernel/src/kernel.rs crates/kernel/src/pattern.rs crates/kernel/src/simt.rs crates/kernel/src/warp.rs Cargo.toml

/root/repo/target/debug/deps/libgpu_kernel-f05d15581996addb.rmeta: /root/repo/clippy.toml crates/kernel/src/lib.rs crates/kernel/src/instr.rs crates/kernel/src/kernel.rs crates/kernel/src/pattern.rs crates/kernel/src/simt.rs crates/kernel/src/warp.rs Cargo.toml

/root/repo/clippy.toml:
crates/kernel/src/lib.rs:
crates/kernel/src/instr.rs:
crates/kernel/src/kernel.rs:
crates/kernel/src/pattern.rs:
crates/kernel/src/simt.rs:
crates/kernel/src/warp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
