/root/repo/target/debug/deps/ablation_substrate-54668d01d177e39e.d: crates/bench/src/bin/ablation_substrate.rs

/root/repo/target/debug/deps/ablation_substrate-54668d01d177e39e: crates/bench/src/bin/ablation_substrate.rs

crates/bench/src/bin/ablation_substrate.rs:
