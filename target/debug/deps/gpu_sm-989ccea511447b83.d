/root/repo/target/debug/deps/gpu_sm-989ccea511447b83.d: crates/sm/src/lib.rs crates/sm/src/gpu.rs crates/sm/src/lsu.rs crates/sm/src/sm.rs crates/sm/src/trace.rs crates/sm/src/traits.rs

/root/repo/target/debug/deps/libgpu_sm-989ccea511447b83.rlib: crates/sm/src/lib.rs crates/sm/src/gpu.rs crates/sm/src/lsu.rs crates/sm/src/sm.rs crates/sm/src/trace.rs crates/sm/src/traits.rs

/root/repo/target/debug/deps/libgpu_sm-989ccea511447b83.rmeta: crates/sm/src/lib.rs crates/sm/src/gpu.rs crates/sm/src/lsu.rs crates/sm/src/sm.rs crates/sm/src/trace.rs crates/sm/src/traits.rs

crates/sm/src/lib.rs:
crates/sm/src/gpu.rs:
crates/sm/src/lsu.rs:
crates/sm/src/sm.rs:
crates/sm/src/trace.rs:
crates/sm/src/traits.rs:
