/root/repo/target/debug/deps/ablation_apres-3bebdc4741c08e19.d: /root/repo/clippy.toml crates/bench/src/bin/ablation_apres.rs Cargo.toml

/root/repo/target/debug/deps/libablation_apres-3bebdc4741c08e19.rmeta: /root/repo/clippy.toml crates/bench/src/bin/ablation_apres.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/ablation_apres.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
