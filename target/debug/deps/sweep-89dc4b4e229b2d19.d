/root/repo/target/debug/deps/sweep-89dc4b4e229b2d19.d: crates/bench/src/bin/sweep.rs

/root/repo/target/debug/deps/sweep-89dc4b4e229b2d19: crates/bench/src/bin/sweep.rs

crates/bench/src/bin/sweep.rs:
