/root/repo/target/debug/deps/panic_free_paths-76efc15a7142933e.d: /root/repo/clippy.toml tests/panic_free_paths.rs Cargo.toml

/root/repo/target/debug/deps/libpanic_free_paths-76efc15a7142933e.rmeta: /root/repo/clippy.toml tests/panic_free_paths.rs Cargo.toml

/root/repo/clippy.toml:
tests/panic_free_paths.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
