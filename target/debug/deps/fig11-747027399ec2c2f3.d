/root/repo/target/debug/deps/fig11-747027399ec2c2f3.d: crates/bench/src/bin/fig11.rs

/root/repo/target/debug/deps/fig11-747027399ec2c2f3: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
