/root/repo/target/debug/deps/fig3-f8ddc0d9fd666b4e.d: crates/bench/src/bin/fig3.rs

/root/repo/target/debug/deps/fig3-f8ddc0d9fd666b4e: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
