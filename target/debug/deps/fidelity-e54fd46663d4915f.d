/root/repo/target/debug/deps/fidelity-e54fd46663d4915f.d: /root/repo/clippy.toml crates/bench/src/bin/fidelity.rs Cargo.toml

/root/repo/target/debug/deps/libfidelity-e54fd46663d4915f.rmeta: /root/repo/clippy.toml crates/bench/src/bin/fidelity.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/fidelity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
