/root/repo/target/debug/deps/bypass_study-557844069560c3c4.d: crates/bench/src/bin/bypass_study.rs

/root/repo/target/debug/deps/bypass_study-557844069560c3c4: crates/bench/src/bin/bypass_study.rs

crates/bench/src/bin/bypass_study.rs:
