/root/repo/target/debug/deps/table2-37dd95cf77222c11.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-37dd95cf77222c11: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
