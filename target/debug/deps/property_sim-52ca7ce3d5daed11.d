/root/repo/target/debug/deps/property_sim-52ca7ce3d5daed11.d: tests/property_sim.rs

/root/repo/target/debug/deps/property_sim-52ca7ce3d5daed11: tests/property_sim.rs

tests/property_sim.rs:
