/root/repo/target/debug/deps/table2-01a5c1a3b1e96209.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-01a5c1a3b1e96209: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
