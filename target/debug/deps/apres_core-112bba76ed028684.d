/root/repo/target/debug/deps/apres_core-112bba76ed028684.d: crates/core/src/lib.rs crates/core/src/energy.rs crates/core/src/hw_cost.rs crates/core/src/laws.rs crates/core/src/sap.rs crates/core/src/sim.rs

/root/repo/target/debug/deps/libapres_core-112bba76ed028684.rlib: crates/core/src/lib.rs crates/core/src/energy.rs crates/core/src/hw_cost.rs crates/core/src/laws.rs crates/core/src/sap.rs crates/core/src/sim.rs

/root/repo/target/debug/deps/libapres_core-112bba76ed028684.rmeta: crates/core/src/lib.rs crates/core/src/energy.rs crates/core/src/hw_cost.rs crates/core/src/laws.rs crates/core/src/sap.rs crates/core/src/sim.rs

crates/core/src/lib.rs:
crates/core/src/energy.rs:
crates/core/src/hw_cost.rs:
crates/core/src/laws.rs:
crates/core/src/sap.rs:
crates/core/src/sim.rs:
