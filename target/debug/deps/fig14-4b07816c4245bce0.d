/root/repo/target/debug/deps/fig14-4b07816c4245bce0.d: crates/bench/src/bin/fig14.rs

/root/repo/target/debug/deps/fig14-4b07816c4245bce0: crates/bench/src/bin/fig14.rs

crates/bench/src/bin/fig14.rs:
