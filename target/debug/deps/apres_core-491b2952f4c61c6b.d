/root/repo/target/debug/deps/apres_core-491b2952f4c61c6b.d: /root/repo/clippy.toml crates/core/src/lib.rs crates/core/src/energy.rs crates/core/src/hw_cost.rs crates/core/src/laws.rs crates/core/src/sap.rs crates/core/src/sim.rs Cargo.toml

/root/repo/target/debug/deps/libapres_core-491b2952f4c61c6b.rmeta: /root/repo/clippy.toml crates/core/src/lib.rs crates/core/src/energy.rs crates/core/src/hw_cost.rs crates/core/src/laws.rs crates/core/src/sap.rs crates/core/src/sim.rs Cargo.toml

/root/repo/clippy.toml:
crates/core/src/lib.rs:
crates/core/src/energy.rs:
crates/core/src/hw_cost.rs:
crates/core/src/laws.rs:
crates/core/src/sap.rs:
crates/core/src/sim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
