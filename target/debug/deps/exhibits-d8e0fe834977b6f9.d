/root/repo/target/debug/deps/exhibits-d8e0fe834977b6f9.d: /root/repo/clippy.toml crates/bench/benches/exhibits.rs Cargo.toml

/root/repo/target/debug/deps/libexhibits-d8e0fe834977b6f9.rmeta: /root/repo/clippy.toml crates/bench/benches/exhibits.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/benches/exhibits.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
