/root/repo/target/debug/deps/table2-76befa4cf147e8dc.d: /root/repo/clippy.toml crates/bench/src/bin/table2.rs Cargo.toml

/root/repo/target/debug/deps/libtable2-76befa4cf147e8dc.rmeta: /root/repo/clippy.toml crates/bench/src/bin/table2.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/table2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
