/root/repo/target/debug/deps/exhibits-2039838feafc1179.d: crates/bench/benches/exhibits.rs

/root/repo/target/debug/deps/exhibits-2039838feafc1179: crates/bench/benches/exhibits.rs

crates/bench/benches/exhibits.rs:
