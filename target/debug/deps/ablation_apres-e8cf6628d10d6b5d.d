/root/repo/target/debug/deps/ablation_apres-e8cf6628d10d6b5d.d: /root/repo/clippy.toml crates/bench/src/bin/ablation_apres.rs Cargo.toml

/root/repo/target/debug/deps/libablation_apres-e8cf6628d10d6b5d.rmeta: /root/repo/clippy.toml crates/bench/src/bin/ablation_apres.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/ablation_apres.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
