/root/repo/target/debug/deps/gpu_kernel-53cf130313d9a216.d: crates/kernel/src/lib.rs crates/kernel/src/instr.rs crates/kernel/src/kernel.rs crates/kernel/src/pattern.rs crates/kernel/src/simt.rs crates/kernel/src/warp.rs

/root/repo/target/debug/deps/libgpu_kernel-53cf130313d9a216.rlib: crates/kernel/src/lib.rs crates/kernel/src/instr.rs crates/kernel/src/kernel.rs crates/kernel/src/pattern.rs crates/kernel/src/simt.rs crates/kernel/src/warp.rs

/root/repo/target/debug/deps/libgpu_kernel-53cf130313d9a216.rmeta: crates/kernel/src/lib.rs crates/kernel/src/instr.rs crates/kernel/src/kernel.rs crates/kernel/src/pattern.rs crates/kernel/src/simt.rs crates/kernel/src/warp.rs

crates/kernel/src/lib.rs:
crates/kernel/src/instr.rs:
crates/kernel/src/kernel.rs:
crates/kernel/src/pattern.rs:
crates/kernel/src/simt.rs:
crates/kernel/src/warp.rs:
