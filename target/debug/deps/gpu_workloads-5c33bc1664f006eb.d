/root/repo/target/debug/deps/gpu_workloads-5c33bc1664f006eb.d: crates/workloads/src/lib.rs crates/workloads/src/benchmarks.rs crates/workloads/src/characterize.rs crates/workloads/src/fidelity.rs crates/workloads/src/spec.rs

/root/repo/target/debug/deps/gpu_workloads-5c33bc1664f006eb: crates/workloads/src/lib.rs crates/workloads/src/benchmarks.rs crates/workloads/src/characterize.rs crates/workloads/src/fidelity.rs crates/workloads/src/spec.rs

crates/workloads/src/lib.rs:
crates/workloads/src/benchmarks.rs:
crates/workloads/src/characterize.rs:
crates/workloads/src/fidelity.rs:
crates/workloads/src/spec.rs:
