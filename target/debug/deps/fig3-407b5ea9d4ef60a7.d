/root/repo/target/debug/deps/fig3-407b5ea9d4ef60a7.d: crates/bench/src/bin/fig3.rs

/root/repo/target/debug/deps/fig3-407b5ea9d4ef60a7: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
