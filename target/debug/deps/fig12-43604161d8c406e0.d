/root/repo/target/debug/deps/fig12-43604161d8c406e0.d: /root/repo/clippy.toml crates/bench/src/bin/fig12.rs Cargo.toml

/root/repo/target/debug/deps/libfig12-43604161d8c406e0.rmeta: /root/repo/clippy.toml crates/bench/src/bin/fig12.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/fig12.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
