/root/repo/target/debug/deps/fig15-e91d96de38ccc8c5.d: /root/repo/clippy.toml crates/bench/src/bin/fig15.rs Cargo.toml

/root/repo/target/debug/deps/libfig15-e91d96de38ccc8c5.rmeta: /root/repo/clippy.toml crates/bench/src/bin/fig15.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/fig15.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
