/root/repo/target/debug/deps/fig13-0b35117e55ae0f38.d: crates/bench/src/bin/fig13.rs

/root/repo/target/debug/deps/fig13-0b35117e55ae0f38: crates/bench/src/bin/fig13.rs

crates/bench/src/bin/fig13.rs:
