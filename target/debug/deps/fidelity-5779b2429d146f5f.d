/root/repo/target/debug/deps/fidelity-5779b2429d146f5f.d: crates/bench/src/bin/fidelity.rs

/root/repo/target/debug/deps/fidelity-5779b2429d146f5f: crates/bench/src/bin/fidelity.rs

crates/bench/src/bin/fidelity.rs:
