/root/repo/target/debug/deps/sweep-46073115bf880ccd.d: /root/repo/clippy.toml crates/bench/src/bin/sweep.rs Cargo.toml

/root/repo/target/debug/deps/libsweep-46073115bf880ccd.rmeta: /root/repo/clippy.toml crates/bench/src/bin/sweep.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
