/root/repo/target/debug/deps/bypass_study-f8a58f53ed8107fb.d: /root/repo/clippy.toml crates/bench/src/bin/bypass_study.rs Cargo.toml

/root/repo/target/debug/deps/libbypass_study-f8a58f53ed8107fb.rmeta: /root/repo/clippy.toml crates/bench/src/bin/bypass_study.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/bypass_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
