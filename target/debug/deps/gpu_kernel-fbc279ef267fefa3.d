/root/repo/target/debug/deps/gpu_kernel-fbc279ef267fefa3.d: crates/kernel/src/lib.rs crates/kernel/src/instr.rs crates/kernel/src/kernel.rs crates/kernel/src/pattern.rs crates/kernel/src/simt.rs crates/kernel/src/warp.rs

/root/repo/target/debug/deps/gpu_kernel-fbc279ef267fefa3: crates/kernel/src/lib.rs crates/kernel/src/instr.rs crates/kernel/src/kernel.rs crates/kernel/src/pattern.rs crates/kernel/src/simt.rs crates/kernel/src/warp.rs

crates/kernel/src/lib.rs:
crates/kernel/src/instr.rs:
crates/kernel/src/kernel.rs:
crates/kernel/src/pattern.rs:
crates/kernel/src/simt.rs:
crates/kernel/src/warp.rs:
