/root/repo/target/debug/deps/fig14-17df0217ae77d2a1.d: /root/repo/clippy.toml crates/bench/src/bin/fig14.rs Cargo.toml

/root/repo/target/debug/deps/libfig14-17df0217ae77d2a1.rmeta: /root/repo/clippy.toml crates/bench/src/bin/fig14.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/fig14.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
