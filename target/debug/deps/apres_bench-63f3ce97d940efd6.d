/root/repo/target/debug/deps/apres_bench-63f3ce97d940efd6.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/apres_bench-63f3ce97d940efd6: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
