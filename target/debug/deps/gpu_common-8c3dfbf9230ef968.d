/root/repo/target/debug/deps/gpu_common-8c3dfbf9230ef968.d: /root/repo/clippy.toml crates/common/src/lib.rs crates/common/src/check.rs crates/common/src/config.rs crates/common/src/error.rs crates/common/src/fault.rs crates/common/src/ids.rs crates/common/src/json.rs crates/common/src/rng.rs crates/common/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libgpu_common-8c3dfbf9230ef968.rmeta: /root/repo/clippy.toml crates/common/src/lib.rs crates/common/src/check.rs crates/common/src/config.rs crates/common/src/error.rs crates/common/src/fault.rs crates/common/src/ids.rs crates/common/src/json.rs crates/common/src/rng.rs crates/common/src/stats.rs Cargo.toml

/root/repo/clippy.toml:
crates/common/src/lib.rs:
crates/common/src/check.rs:
crates/common/src/config.rs:
crates/common/src/error.rs:
crates/common/src/fault.rs:
crates/common/src/ids.rs:
crates/common/src/json.rs:
crates/common/src/rng.rs:
crates/common/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
