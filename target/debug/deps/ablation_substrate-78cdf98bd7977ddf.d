/root/repo/target/debug/deps/ablation_substrate-78cdf98bd7977ddf.d: crates/bench/src/bin/ablation_substrate.rs

/root/repo/target/debug/deps/ablation_substrate-78cdf98bd7977ddf: crates/bench/src/bin/ablation_substrate.rs

crates/bench/src/bin/ablation_substrate.rs:
