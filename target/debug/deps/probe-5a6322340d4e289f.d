/root/repo/target/debug/deps/probe-5a6322340d4e289f.d: /root/repo/clippy.toml crates/bench/src/bin/probe.rs Cargo.toml

/root/repo/target/debug/deps/libprobe-5a6322340d4e289f.rmeta: /root/repo/clippy.toml crates/bench/src/bin/probe.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/probe.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
