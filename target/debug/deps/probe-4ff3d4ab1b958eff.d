/root/repo/target/debug/deps/probe-4ff3d4ab1b958eff.d: crates/bench/src/bin/probe.rs

/root/repo/target/debug/deps/probe-4ff3d4ab1b958eff: crates/bench/src/bin/probe.rs

crates/bench/src/bin/probe.rs:
