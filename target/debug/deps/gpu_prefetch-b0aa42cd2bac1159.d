/root/repo/target/debug/deps/gpu_prefetch-b0aa42cd2bac1159.d: /root/repo/clippy.toml crates/prefetch/src/lib.rs crates/prefetch/src/sld.rs crates/prefetch/src/str_prefetch.rs Cargo.toml

/root/repo/target/debug/deps/libgpu_prefetch-b0aa42cd2bac1159.rmeta: /root/repo/clippy.toml crates/prefetch/src/lib.rs crates/prefetch/src/sld.rs crates/prefetch/src/str_prefetch.rs Cargo.toml

/root/repo/clippy.toml:
crates/prefetch/src/lib.rs:
crates/prefetch/src/sld.rs:
crates/prefetch/src/str_prefetch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
