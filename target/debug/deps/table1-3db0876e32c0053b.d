/root/repo/target/debug/deps/table1-3db0876e32c0053b.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-3db0876e32c0053b: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
