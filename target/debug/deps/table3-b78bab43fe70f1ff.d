/root/repo/target/debug/deps/table3-b78bab43fe70f1ff.d: /root/repo/clippy.toml crates/bench/src/bin/table3.rs Cargo.toml

/root/repo/target/debug/deps/libtable3-b78bab43fe70f1ff.rmeta: /root/repo/clippy.toml crates/bench/src/bin/table3.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/table3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
