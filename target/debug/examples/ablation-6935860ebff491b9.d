/root/repo/target/debug/examples/ablation-6935860ebff491b9.d: /root/repo/clippy.toml examples/ablation.rs Cargo.toml

/root/repo/target/debug/examples/libablation-6935860ebff491b9.rmeta: /root/repo/clippy.toml examples/ablation.rs Cargo.toml

/root/repo/clippy.toml:
examples/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
