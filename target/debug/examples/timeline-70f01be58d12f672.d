/root/repo/target/debug/examples/timeline-70f01be58d12f672.d: examples/timeline.rs

/root/repo/target/debug/examples/timeline-70f01be58d12f672: examples/timeline.rs

examples/timeline.rs:
