/root/repo/target/debug/examples/custom_workload-e13e0589de66afdb.d: examples/custom_workload.rs

/root/repo/target/debug/examples/custom_workload-e13e0589de66afdb: examples/custom_workload.rs

examples/custom_workload.rs:
