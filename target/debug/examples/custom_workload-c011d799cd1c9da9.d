/root/repo/target/debug/examples/custom_workload-c011d799cd1c9da9.d: /root/repo/clippy.toml examples/custom_workload.rs Cargo.toml

/root/repo/target/debug/examples/libcustom_workload-c011d799cd1c9da9.rmeta: /root/repo/clippy.toml examples/custom_workload.rs Cargo.toml

/root/repo/clippy.toml:
examples/custom_workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
