/root/repo/target/debug/examples/workload_file-8d068419de42821f.d: /root/repo/clippy.toml examples/workload_file.rs Cargo.toml

/root/repo/target/debug/examples/libworkload_file-8d068419de42821f.rmeta: /root/repo/clippy.toml examples/workload_file.rs Cargo.toml

/root/repo/clippy.toml:
examples/workload_file.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
