/root/repo/target/debug/examples/timeline-8a9bc2bb0090dc10.d: /root/repo/clippy.toml examples/timeline.rs Cargo.toml

/root/repo/target/debug/examples/libtimeline-8a9bc2bb0090dc10.rmeta: /root/repo/clippy.toml examples/timeline.rs Cargo.toml

/root/repo/clippy.toml:
examples/timeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
