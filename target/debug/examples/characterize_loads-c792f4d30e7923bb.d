/root/repo/target/debug/examples/characterize_loads-c792f4d30e7923bb.d: /root/repo/clippy.toml examples/characterize_loads.rs Cargo.toml

/root/repo/target/debug/examples/libcharacterize_loads-c792f4d30e7923bb.rmeta: /root/repo/clippy.toml examples/characterize_loads.rs Cargo.toml

/root/repo/clippy.toml:
examples/characterize_loads.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
