/root/repo/target/debug/examples/ablation-93291bc65c753602.d: examples/ablation.rs

/root/repo/target/debug/examples/ablation-93291bc65c753602: examples/ablation.rs

examples/ablation.rs:
