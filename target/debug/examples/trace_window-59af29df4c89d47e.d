/root/repo/target/debug/examples/trace_window-59af29df4c89d47e.d: /root/repo/clippy.toml examples/trace_window.rs Cargo.toml

/root/repo/target/debug/examples/libtrace_window-59af29df4c89d47e.rmeta: /root/repo/clippy.toml examples/trace_window.rs Cargo.toml

/root/repo/clippy.toml:
examples/trace_window.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
