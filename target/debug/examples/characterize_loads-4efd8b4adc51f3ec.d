/root/repo/target/debug/examples/characterize_loads-4efd8b4adc51f3ec.d: examples/characterize_loads.rs

/root/repo/target/debug/examples/characterize_loads-4efd8b4adc51f3ec: examples/characterize_loads.rs

examples/characterize_loads.rs:
