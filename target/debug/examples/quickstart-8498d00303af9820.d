/root/repo/target/debug/examples/quickstart-8498d00303af9820.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-8498d00303af9820: examples/quickstart.rs

examples/quickstart.rs:
