/root/repo/target/debug/examples/workload_file-411e7634fe531963.d: examples/workload_file.rs

/root/repo/target/debug/examples/workload_file-411e7634fe531963: examples/workload_file.rs

examples/workload_file.rs:
