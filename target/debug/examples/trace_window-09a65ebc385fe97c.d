/root/repo/target/debug/examples/trace_window-09a65ebc385fe97c.d: examples/trace_window.rs

/root/repo/target/debug/examples/trace_window-09a65ebc385fe97c: examples/trace_window.rs

examples/trace_window.rs:
