/root/repo/target/debug/examples/_verify_probe-44e8176957eeb748.d: /root/repo/clippy.toml examples/_verify_probe.rs Cargo.toml

/root/repo/target/debug/examples/lib_verify_probe-44e8176957eeb748.rmeta: /root/repo/clippy.toml examples/_verify_probe.rs Cargo.toml

/root/repo/clippy.toml:
examples/_verify_probe.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
