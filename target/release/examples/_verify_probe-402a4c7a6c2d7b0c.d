/root/repo/target/release/examples/_verify_probe-402a4c7a6c2d7b0c.d: examples/_verify_probe.rs

/root/repo/target/release/examples/_verify_probe-402a4c7a6c2d7b0c: examples/_verify_probe.rs

examples/_verify_probe.rs:
