/root/repo/target/release/examples/quickstart-4eebb9a01b783076.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-4eebb9a01b783076: examples/quickstart.rs

examples/quickstart.rs:
