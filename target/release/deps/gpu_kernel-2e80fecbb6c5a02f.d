/root/repo/target/release/deps/gpu_kernel-2e80fecbb6c5a02f.d: crates/kernel/src/lib.rs crates/kernel/src/instr.rs crates/kernel/src/kernel.rs crates/kernel/src/pattern.rs crates/kernel/src/simt.rs crates/kernel/src/warp.rs

/root/repo/target/release/deps/libgpu_kernel-2e80fecbb6c5a02f.rlib: crates/kernel/src/lib.rs crates/kernel/src/instr.rs crates/kernel/src/kernel.rs crates/kernel/src/pattern.rs crates/kernel/src/simt.rs crates/kernel/src/warp.rs

/root/repo/target/release/deps/libgpu_kernel-2e80fecbb6c5a02f.rmeta: crates/kernel/src/lib.rs crates/kernel/src/instr.rs crates/kernel/src/kernel.rs crates/kernel/src/pattern.rs crates/kernel/src/simt.rs crates/kernel/src/warp.rs

crates/kernel/src/lib.rs:
crates/kernel/src/instr.rs:
crates/kernel/src/kernel.rs:
crates/kernel/src/pattern.rs:
crates/kernel/src/simt.rs:
crates/kernel/src/warp.rs:
