/root/repo/target/release/deps/fig15-7d91d6252670c53c.d: crates/bench/src/bin/fig15.rs

/root/repo/target/release/deps/fig15-7d91d6252670c53c: crates/bench/src/bin/fig15.rs

crates/bench/src/bin/fig15.rs:
