/root/repo/target/release/deps/gpu_workloads-abfa03a1a694dbdb.d: crates/workloads/src/lib.rs crates/workloads/src/benchmarks.rs crates/workloads/src/characterize.rs crates/workloads/src/fidelity.rs crates/workloads/src/spec.rs

/root/repo/target/release/deps/libgpu_workloads-abfa03a1a694dbdb.rlib: crates/workloads/src/lib.rs crates/workloads/src/benchmarks.rs crates/workloads/src/characterize.rs crates/workloads/src/fidelity.rs crates/workloads/src/spec.rs

/root/repo/target/release/deps/libgpu_workloads-abfa03a1a694dbdb.rmeta: crates/workloads/src/lib.rs crates/workloads/src/benchmarks.rs crates/workloads/src/characterize.rs crates/workloads/src/fidelity.rs crates/workloads/src/spec.rs

crates/workloads/src/lib.rs:
crates/workloads/src/benchmarks.rs:
crates/workloads/src/characterize.rs:
crates/workloads/src/fidelity.rs:
crates/workloads/src/spec.rs:
