/root/repo/target/release/deps/gpu_prefetch-4f3cc0cfd1149ee4.d: crates/prefetch/src/lib.rs crates/prefetch/src/sld.rs crates/prefetch/src/str_prefetch.rs

/root/repo/target/release/deps/libgpu_prefetch-4f3cc0cfd1149ee4.rlib: crates/prefetch/src/lib.rs crates/prefetch/src/sld.rs crates/prefetch/src/str_prefetch.rs

/root/repo/target/release/deps/libgpu_prefetch-4f3cc0cfd1149ee4.rmeta: crates/prefetch/src/lib.rs crates/prefetch/src/sld.rs crates/prefetch/src/str_prefetch.rs

crates/prefetch/src/lib.rs:
crates/prefetch/src/sld.rs:
crates/prefetch/src/str_prefetch.rs:
