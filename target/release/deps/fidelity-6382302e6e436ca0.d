/root/repo/target/release/deps/fidelity-6382302e6e436ca0.d: crates/bench/src/bin/fidelity.rs

/root/repo/target/release/deps/fidelity-6382302e6e436ca0: crates/bench/src/bin/fidelity.rs

crates/bench/src/bin/fidelity.rs:
