/root/repo/target/release/deps/fig12-7c6b4996369fc3b0.d: crates/bench/src/bin/fig12.rs

/root/repo/target/release/deps/fig12-7c6b4996369fc3b0: crates/bench/src/bin/fig12.rs

crates/bench/src/bin/fig12.rs:
