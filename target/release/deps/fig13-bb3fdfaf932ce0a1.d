/root/repo/target/release/deps/fig13-bb3fdfaf932ce0a1.d: crates/bench/src/bin/fig13.rs

/root/repo/target/release/deps/fig13-bb3fdfaf932ce0a1: crates/bench/src/bin/fig13.rs

crates/bench/src/bin/fig13.rs:
