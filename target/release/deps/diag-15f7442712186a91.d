/root/repo/target/release/deps/diag-15f7442712186a91.d: crates/bench/src/bin/diag.rs

/root/repo/target/release/deps/diag-15f7442712186a91: crates/bench/src/bin/diag.rs

crates/bench/src/bin/diag.rs:
