/root/repo/target/release/deps/gpu_common-a0cd476b887eee83.d: crates/common/src/lib.rs crates/common/src/check.rs crates/common/src/config.rs crates/common/src/error.rs crates/common/src/fault.rs crates/common/src/ids.rs crates/common/src/json.rs crates/common/src/rng.rs crates/common/src/stats.rs

/root/repo/target/release/deps/libgpu_common-a0cd476b887eee83.rlib: crates/common/src/lib.rs crates/common/src/check.rs crates/common/src/config.rs crates/common/src/error.rs crates/common/src/fault.rs crates/common/src/ids.rs crates/common/src/json.rs crates/common/src/rng.rs crates/common/src/stats.rs

/root/repo/target/release/deps/libgpu_common-a0cd476b887eee83.rmeta: crates/common/src/lib.rs crates/common/src/check.rs crates/common/src/config.rs crates/common/src/error.rs crates/common/src/fault.rs crates/common/src/ids.rs crates/common/src/json.rs crates/common/src/rng.rs crates/common/src/stats.rs

crates/common/src/lib.rs:
crates/common/src/check.rs:
crates/common/src/config.rs:
crates/common/src/error.rs:
crates/common/src/fault.rs:
crates/common/src/ids.rs:
crates/common/src/json.rs:
crates/common/src/rng.rs:
crates/common/src/stats.rs:
