/root/repo/target/release/deps/fig11-6cd35e2982f03a0e.d: crates/bench/src/bin/fig11.rs

/root/repo/target/release/deps/fig11-6cd35e2982f03a0e: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
