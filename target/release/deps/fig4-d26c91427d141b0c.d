/root/repo/target/release/deps/fig4-d26c91427d141b0c.d: crates/bench/src/bin/fig4.rs

/root/repo/target/release/deps/fig4-d26c91427d141b0c: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
