/root/repo/target/release/deps/apres_bench-121532c6c681203b.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libapres_bench-121532c6c681203b.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libapres_bench-121532c6c681203b.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
