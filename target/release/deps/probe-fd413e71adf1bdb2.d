/root/repo/target/release/deps/probe-fd413e71adf1bdb2.d: crates/bench/src/bin/probe.rs

/root/repo/target/release/deps/probe-fd413e71adf1bdb2: crates/bench/src/bin/probe.rs

crates/bench/src/bin/probe.rs:
