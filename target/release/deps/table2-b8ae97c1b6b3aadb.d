/root/repo/target/release/deps/table2-b8ae97c1b6b3aadb.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-b8ae97c1b6b3aadb: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
