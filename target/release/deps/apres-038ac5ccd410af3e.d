/root/repo/target/release/deps/apres-038ac5ccd410af3e.d: src/lib.rs

/root/repo/target/release/deps/libapres-038ac5ccd410af3e.rlib: src/lib.rs

/root/repo/target/release/deps/libapres-038ac5ccd410af3e.rmeta: src/lib.rs

src/lib.rs:
