/root/repo/target/release/deps/sweep-2a72d240134e0cc3.d: crates/bench/src/bin/sweep.rs

/root/repo/target/release/deps/sweep-2a72d240134e0cc3: crates/bench/src/bin/sweep.rs

crates/bench/src/bin/sweep.rs:
