/root/repo/target/release/deps/table3-dafdb0890df17a52.d: crates/bench/src/bin/table3.rs

/root/repo/target/release/deps/table3-dafdb0890df17a52: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
