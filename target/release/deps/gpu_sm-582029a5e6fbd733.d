/root/repo/target/release/deps/gpu_sm-582029a5e6fbd733.d: crates/sm/src/lib.rs crates/sm/src/gpu.rs crates/sm/src/lsu.rs crates/sm/src/sm.rs crates/sm/src/trace.rs crates/sm/src/traits.rs

/root/repo/target/release/deps/libgpu_sm-582029a5e6fbd733.rlib: crates/sm/src/lib.rs crates/sm/src/gpu.rs crates/sm/src/lsu.rs crates/sm/src/sm.rs crates/sm/src/trace.rs crates/sm/src/traits.rs

/root/repo/target/release/deps/libgpu_sm-582029a5e6fbd733.rmeta: crates/sm/src/lib.rs crates/sm/src/gpu.rs crates/sm/src/lsu.rs crates/sm/src/sm.rs crates/sm/src/trace.rs crates/sm/src/traits.rs

crates/sm/src/lib.rs:
crates/sm/src/gpu.rs:
crates/sm/src/lsu.rs:
crates/sm/src/sm.rs:
crates/sm/src/trace.rs:
crates/sm/src/traits.rs:
