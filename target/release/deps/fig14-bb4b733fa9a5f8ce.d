/root/repo/target/release/deps/fig14-bb4b733fa9a5f8ce.d: crates/bench/src/bin/fig14.rs

/root/repo/target/release/deps/fig14-bb4b733fa9a5f8ce: crates/bench/src/bin/fig14.rs

crates/bench/src/bin/fig14.rs:
