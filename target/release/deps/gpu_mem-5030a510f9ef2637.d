/root/repo/target/release/deps/gpu_mem-5030a510f9ef2637.d: crates/mem/src/lib.rs crates/mem/src/bypass.rs crates/mem/src/cache.rs crates/mem/src/classify.rs crates/mem/src/coalesce.rs crates/mem/src/dram.rs crates/mem/src/l1.rs crates/mem/src/l2.rs crates/mem/src/memsys.rs crates/mem/src/mshr.rs crates/mem/src/noc.rs crates/mem/src/prefetch_meta.rs crates/mem/src/request.rs

/root/repo/target/release/deps/libgpu_mem-5030a510f9ef2637.rlib: crates/mem/src/lib.rs crates/mem/src/bypass.rs crates/mem/src/cache.rs crates/mem/src/classify.rs crates/mem/src/coalesce.rs crates/mem/src/dram.rs crates/mem/src/l1.rs crates/mem/src/l2.rs crates/mem/src/memsys.rs crates/mem/src/mshr.rs crates/mem/src/noc.rs crates/mem/src/prefetch_meta.rs crates/mem/src/request.rs

/root/repo/target/release/deps/libgpu_mem-5030a510f9ef2637.rmeta: crates/mem/src/lib.rs crates/mem/src/bypass.rs crates/mem/src/cache.rs crates/mem/src/classify.rs crates/mem/src/coalesce.rs crates/mem/src/dram.rs crates/mem/src/l1.rs crates/mem/src/l2.rs crates/mem/src/memsys.rs crates/mem/src/mshr.rs crates/mem/src/noc.rs crates/mem/src/prefetch_meta.rs crates/mem/src/request.rs

crates/mem/src/lib.rs:
crates/mem/src/bypass.rs:
crates/mem/src/cache.rs:
crates/mem/src/classify.rs:
crates/mem/src/coalesce.rs:
crates/mem/src/dram.rs:
crates/mem/src/l1.rs:
crates/mem/src/l2.rs:
crates/mem/src/memsys.rs:
crates/mem/src/mshr.rs:
crates/mem/src/noc.rs:
crates/mem/src/prefetch_meta.rs:
crates/mem/src/request.rs:
