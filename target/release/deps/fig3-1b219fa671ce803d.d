/root/repo/target/release/deps/fig3-1b219fa671ce803d.d: crates/bench/src/bin/fig3.rs

/root/repo/target/release/deps/fig3-1b219fa671ce803d: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
