/root/repo/target/release/deps/table1-df948dc09958ecfd.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-df948dc09958ecfd: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
