/root/repo/target/release/deps/ablation_substrate-94d72a32dec54e6a.d: crates/bench/src/bin/ablation_substrate.rs

/root/repo/target/release/deps/ablation_substrate-94d72a32dec54e6a: crates/bench/src/bin/ablation_substrate.rs

crates/bench/src/bin/ablation_substrate.rs:
