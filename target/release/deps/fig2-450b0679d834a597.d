/root/repo/target/release/deps/fig2-450b0679d834a597.d: crates/bench/src/bin/fig2.rs

/root/repo/target/release/deps/fig2-450b0679d834a597: crates/bench/src/bin/fig2.rs

crates/bench/src/bin/fig2.rs:
