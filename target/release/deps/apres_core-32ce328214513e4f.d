/root/repo/target/release/deps/apres_core-32ce328214513e4f.d: crates/core/src/lib.rs crates/core/src/energy.rs crates/core/src/hw_cost.rs crates/core/src/laws.rs crates/core/src/sap.rs crates/core/src/sim.rs

/root/repo/target/release/deps/libapres_core-32ce328214513e4f.rlib: crates/core/src/lib.rs crates/core/src/energy.rs crates/core/src/hw_cost.rs crates/core/src/laws.rs crates/core/src/sap.rs crates/core/src/sim.rs

/root/repo/target/release/deps/libapres_core-32ce328214513e4f.rmeta: crates/core/src/lib.rs crates/core/src/energy.rs crates/core/src/hw_cost.rs crates/core/src/laws.rs crates/core/src/sap.rs crates/core/src/sim.rs

crates/core/src/lib.rs:
crates/core/src/energy.rs:
crates/core/src/hw_cost.rs:
crates/core/src/laws.rs:
crates/core/src/sap.rs:
crates/core/src/sim.rs:
