/root/repo/target/release/deps/fig10-63fd736bc298df06.d: crates/bench/src/bin/fig10.rs

/root/repo/target/release/deps/fig10-63fd736bc298df06: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
