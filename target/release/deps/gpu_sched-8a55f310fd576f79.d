/root/repo/target/release/deps/gpu_sched-8a55f310fd576f79.d: crates/sched/src/lib.rs crates/sched/src/ccws.rs crates/sched/src/gto.rs crates/sched/src/lrr.rs crates/sched/src/mascar.rs crates/sched/src/pa.rs crates/sched/src/two_level.rs

/root/repo/target/release/deps/libgpu_sched-8a55f310fd576f79.rlib: crates/sched/src/lib.rs crates/sched/src/ccws.rs crates/sched/src/gto.rs crates/sched/src/lrr.rs crates/sched/src/mascar.rs crates/sched/src/pa.rs crates/sched/src/two_level.rs

/root/repo/target/release/deps/libgpu_sched-8a55f310fd576f79.rmeta: crates/sched/src/lib.rs crates/sched/src/ccws.rs crates/sched/src/gto.rs crates/sched/src/lrr.rs crates/sched/src/mascar.rs crates/sched/src/pa.rs crates/sched/src/two_level.rs

crates/sched/src/lib.rs:
crates/sched/src/ccws.rs:
crates/sched/src/gto.rs:
crates/sched/src/lrr.rs:
crates/sched/src/mascar.rs:
crates/sched/src/pa.rs:
crates/sched/src/two_level.rs:
