/root/repo/target/release/deps/bypass_study-9290e9c09fbce714.d: crates/bench/src/bin/bypass_study.rs

/root/repo/target/release/deps/bypass_study-9290e9c09fbce714: crates/bench/src/bin/bypass_study.rs

crates/bench/src/bin/bypass_study.rs:
