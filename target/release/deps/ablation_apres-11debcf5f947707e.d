/root/repo/target/release/deps/ablation_apres-11debcf5f947707e.d: crates/bench/src/bin/ablation_apres.rs

/root/repo/target/release/deps/ablation_apres-11debcf5f947707e: crates/bench/src/bin/ablation_apres.rs

crates/bench/src/bin/ablation_apres.rs:
