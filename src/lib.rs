//! # APRES — Adaptive PREfetching and Scheduling for GPU cache efficiency
//!
//! A from-scratch Rust reproduction of *Oh et al., "APRES: Improving Cache
//! Efficiency by Exploiting Load Characteristics on GPUs", ISCA 2016*:
//! a cycle-level GPU streaming-multiprocessor simulator, the APRES
//! mechanisms (the LAWS warp scheduler + the SAP prefetcher), every baseline
//! policy the paper compares against, and synthetic workloads reproducing
//! the paper's fifteen-benchmark suite.
//!
//! This crate is the facade: it re-exports the workspace's public API under
//! one roof. The typical entry point is [`Simulation`]:
//!
//! ```
//! use apres::{Simulation, SchedulerChoice, PrefetcherChoice, Benchmark, GpuConfig};
//!
//! // Run the KMeans-like workload under the full APRES configuration.
//! // `run` returns a typed `Result`: invalid configurations and
//! // watchdog-diagnosed deadlocks surface as `SimError`, never panics.
//! let result = Simulation::new(Benchmark::Km.kernel_scaled(8))
//!     .config(GpuConfig::small_test())
//!     .scheduler(SchedulerChoice::Laws)
//!     .prefetcher(PrefetcherChoice::Sap)
//!     .run()
//!     .expect("valid config, no deadlock");
//! assert!(result.termination.is_drained());
//! println!("IPC = {:.3}", result.ipc());
//! ```
//!
//! ## Crate map
//!
//! | Module | Source crate | Contents |
//! |--------|--------------|----------|
//! | [`common`] | `gpu-common` | ids, [`GpuConfig`], statistics, RNG |
//! | [`kernel`] | `gpu-kernel` | synthetic ISA, address patterns, SIMT stack |
//! | [`mem`] | `gpu-mem` | coalescer, L1/MSHRs, L2 banks, DRAM, NoC |
//! | [`sm`] | `gpu-sm` | SM pipeline, scheduler/prefetcher traits, GPU |
//! | [`sched`] | `gpu-sched` | LRR, GTO, two-level, CCWS, MASCAR, PA |
//! | [`prefetch`] | `gpu-prefetch` | STR and SLD prefetchers |
//! | [`core`] | `apres-core` | **LAWS + SAP**, energy model, Table II cost |
//! | [`workloads`] | `gpu-workloads` | the 15 benchmarks + Table I characterisation |
//! | [`analysis`] | `gpu-analysis` | static kernel-IR verifier, footprint/stride inference, SAP oracle |

pub use apres_core as core;
pub use gpu_analysis as analysis;
pub use gpu_common as common;
pub use gpu_kernel as kernel;
pub use gpu_mem as mem;
pub use gpu_prefetch as prefetch;
pub use gpu_sched as sched;
pub use gpu_sm as sm;
pub use gpu_workloads as workloads;

pub use apres_core::energy::EnergyModel;
pub use apres_core::hw_cost::HwCost;
pub use apres_core::sim::{PrefetcherChoice, SchedulerChoice, Simulation};
pub use apres_core::{Laws, Sap};
pub use gpu_analysis::{analyze, KernelReport, OracleReport, StrideClass};
pub use gpu_common::error::{DeadlockDiagnosis, SimError, SimResult};
pub use gpu_common::fault::{FaultCounters, FaultPlan};
pub use gpu_common::{Addr, Cycle, GpuConfig, LineAddr, Pc, SmId, WarpId};
pub use gpu_common::{Diagnostic, Report, Severity};
pub use gpu_kernel::{AddressPattern, Kernel};
pub use gpu_sm::gpu::Sample;
pub use gpu_sm::trace::{IssueKind, TraceEvent};
pub use gpu_sm::{Gpu, Parallelism, RunResult, StepMode, Termination, DEFAULT_WATCHDOG_WINDOW};
pub use gpu_workloads::{
    characterize, fidelity_report, Benchmark, Category, KernelSpec, LoadProfile,
};
