# Developer entry points. `just check` is the pre-merge gate.

# Build + test + lint + docs + determinism + fault-tolerance smoke +
# performance regression gate, exactly what CI runs.
check: build test clippy lint-kernels lint-workspace doc bench-smoke serve-smoke perf-gate

build:
    cargo build --release --workspace --bins --examples --benches

test:
    cargo test --workspace

# Panicking escape hatches are denied in library code (workspace [lints]
# plus clippy.toml's allow-*-in-tests); any warning fails the gate.
clippy:
    cargo clippy --workspace --all-targets -- -D warnings

# Static kernel-IR lint over every bundled workload (structure, def-use,
# Table-I cross-check, SAP oracle). Warnings fail the gate, mirroring
# clippy's -D warnings.
lint-kernels:
    cargo run --release -p apres-bench --bin kernel-lint -- --deny-warnings --oracle

# Determinism & concurrency static analysis over the workspace's own
# source (hash-iter, wall-clock, unseeded-rng, float-ord, shared-mut,
# panic-path; see DESIGN.md §12). The baseline ships empty and must stay
# empty: fix findings, don't suppress them.
lint-workspace:
    cargo run --release -p apres-lint --bin workspace-lint -- --deny-warnings --baseline lint-baseline.txt

# API docs must build warning-free (gpu-common and apres-core additionally
# deny missing docs at compile time).
doc:
    RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps

# Determinism gate of the parallel sweep harness: every bench binary at
# the minimal scale must print byte-identical output under --jobs 1 and
# --jobs 2 (needs `just build` first; `check` orders them correctly).
bench-smoke:
    bash scripts/bench_smoke.sh

# Fault-tolerance gate of the batch service: a batch served cold, warm
# from the verified result cache, or through the injected fault matrix
# (corrupt/truncated cache entry, killed worker, stalled job) must be
# byte-identical to a direct harness run (needs `just build` first).
serve-smoke:
    bash scripts/serve_smoke.sh

# Measured-performance regression gate: re-times the pinned suite of
# perf_trajectory in both step modes and fails if the skip/tick speedup
# ratio regressed >10% vs the newest checked-in BENCH_*.json (the ratio,
# not absolute rates, so the gate is machine-portable; METHODOLOGY.md).
perf-gate:
    cargo run --release -p apres-bench --bin perf_trajectory -- --fast --check > /dev/null

# Regenerate the measured-performance trajectory after intentional
# performance work: writes the next BENCH_<n>.json for review/check-in.
perf-record:
    cargo run --release -p apres-bench --bin perf_trajectory -- --fast --write > /dev/null

# Regenerate every paper exhibit at reduced scale (smoke test of the
# figure pipeline; skipped data points are reported on stderr).
exhibits-fast:
    cargo run --release -p apres-bench --bin table1
    cargo run --release -p apres-bench --bin table2
    cargo run --release -p apres-bench --bin table3
    cargo run --release -p apres-bench --bin fig2 -- --fast
    cargo run --release -p apres-bench --bin fig10 -- --fast
