#!/usr/bin/env bash
# `just serve-smoke` — the fault-tolerance gate of the batch service.
#
# Drives the release apres-serve binary through the service fault matrix
# and asserts the acceptance property of DESIGN.md §11: a batch served
# cold, warm from the verified cache, or through injected faults (corrupt
# cache entry, truncated cache entry, killed worker, stalled job) is
# byte-identical to a direct harness run of the same specs — the service
# machinery must be invisible in the results.
set -u
cd "$(dirname "$0")/.."
BIN=target/release/apres-serve
fail=0

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT
CACHE="$work/cache"
BATCH="$work/batch.json"

cat > "$BATCH" <<'EOF'
{
  "name": "smoke",
  "jobs": [
    {"bench": "HS", "sched": "LRR", "pf": "none", "scale": "tiny"},
    {"bench": "KM", "sched": "LAWS", "pf": "SAP", "scale": "tiny"},
    {"bench": "BFS", "sched": "CCWS", "pf": "STR", "scale": "tiny"},
    {"bench": "HS", "sched": "LRR", "pf": "none", "scale": "tiny"}
  ]
}
EOF

# serve NAME EXPECT_GREP [flags...] — run one serving, capture stdout,
# assert exit 0 and that stderr matches EXPECT_GREP (empty = no check).
serve() {
  local name="$1" expect="$2"
  shift 2
  local out rc err
  err="$work/$name.stderr"
  out="$("$BIN" "$BATCH" "$@" 2>"$err")"
  rc=$?
  if [ $rc -ne 0 ]; then
    echo "FAIL $name: exited $rc"
    sed 's/^/  /' "$err" | tail -5
    fail=1
    return 1
  fi
  if [ -n "$expect" ] && ! grep -q "$expect" "$err"; then
    echo "FAIL $name: stderr does not match '$expect'"
    sed 's/^/  /' "$err" | tail -5
    fail=1
    return 1
  fi
  printf '%s\n' "$out" > "$work/$name.out"
  echo "ok   $name"
}

identical() {
  local a="$1" b="$2"
  if cmp -s "$work/$a.out" "$work/$b.out"; then
    echo "ok   $a == $b (byte-identical)"
  else
    echo "FAIL $a vs $b: responses differ"
    diff "$work/$a.out" "$work/$b.out" | head -10
    fail=1
  fi
}

# Reference: the batch computed directly on the bench harness pool,
# bypassing every piece of service machinery.
serve direct "" --direct --jobs 2

# Cold serving populates the cache (3 unique jobs; the 4th is a dup).
serve cold "cache 0 hit(s) / 3 miss(es)" --cache "$CACHE" --jobs 2

# Warm re-serving must be 100% cache hits.
serve warm "cache 3 hit(s) / 0 miss(es)" --cache "$CACHE" --jobs 2

# Fault matrix: corrupt one job's cache entry AND kill the worker that
# recomputes it, in the same serving — the entry is evicted, the kill
# panics the first recompute attempt, the retry lands, and the batch
# still completes (the kill targets the compute path, which only the
# evicted job reaches on a warm cache).
serve faulted "1 evicted, 1 retry(ies), 1 recovered" \
  --cache "$CACHE" --jobs 2 --fault-corrupt 1 --fault-kill 1

# Truncated entry: detected by verification, evicted, recomputed.
serve truncated "1 evicted" --cache "$CACHE" --jobs 2 --fault-truncate 1

# Stalled job: its first attempt blows the deadline, the retry lands.
# Clear the cache first — a cache hit would never reach the compute path
# the stall fault lives on.
rm -rf "$CACHE"
serve stalled "1 retry(ies), 1 recovered" \
  --cache "$CACHE" --jobs 2 --fault-stall 2 --deadline-ms 2000

# Acceptance: every serving above, whatever the cache state or injected
# fault, must match the direct harness run byte-for-byte.
identical cold direct
identical warm direct
identical faulted direct
identical truncated direct
identical stalled direct

if [ $fail -ne 0 ]; then
  echo "serve-smoke: FAILED"
  exit 1
fi
echo "serve-smoke: batch byte-identical across cache states and fault matrix"
