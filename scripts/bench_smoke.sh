#!/usr/bin/env bash
# `just bench-smoke` — the determinism gate of the parallel sweep harness.
#
# Runs every bench binary at the minimal (--tiny) scale twice, once with
# `--jobs 1` and once with `--jobs 2`, and byte-compares stdout; for the
# binaries that emit JSON artifacts it byte-compares those too. Any
# difference means the harness leaked thread-scheduling order into the
# output, which is a bug (see DESIGN.md §10).
#
# probe runs with --no-time because its wall-clock columns are the one
# deliberately non-deterministic output.
set -u
cd "$(dirname "$0")/.."
BIN=target/release
fail=0

compare() {
  local name="$1"
  shift
  local out1 out2 rc
  out1="$("$BIN/$name" "$@" --jobs 1 2>/dev/null)"
  rc=$?
  if [ $rc -ne 0 ]; then
    echo "FAIL $name: --jobs 1 exited $rc"
    fail=1
    return
  fi
  out2="$("$BIN/$name" "$@" --jobs 2 2>/dev/null)"
  rc=$?
  if [ $rc -ne 0 ]; then
    echo "FAIL $name: --jobs 2 exited $rc"
    fail=1
    return
  fi
  if [ "$out1" = "$out2" ]; then
    echo "ok   $name"
  else
    echo "FAIL $name: stdout differs between --jobs 1 and --jobs 2"
    diff <(printf '%s\n' "$out1") <(printf '%s\n' "$out2") | head -10
    fail=1
  fi
}

json_compare() {
  local name="$1"
  shift
  local d1 d2
  d1=$(mktemp -d)
  d2=$(mktemp -d)
  "$BIN/$name" "$@" --jobs 1 --json "$d1" >/dev/null 2>&1
  "$BIN/$name" "$@" --jobs 2 --json "$d2" >/dev/null 2>&1
  if diff -r "$d1" "$d2" >/dev/null 2>&1 && [ -n "$(ls -A "$d1")" ]; then
    echo "ok   $name (json artifacts)"
  else
    echo "FAIL $name: JSON artifacts differ (or none were written)"
    fail=1
  fi
  rm -rf "$d1" "$d2"
}

# Every exhibit and study binary, at the scale bench-smoke exercises.
compare fig2 --tiny
compare fig3 --tiny
compare fig4 --tiny
compare fig10 --tiny
compare fig11 --tiny
compare fig12 --tiny
compare fig13 --tiny
compare fig14 --tiny
compare fig15 --tiny
compare table1 --tiny
compare table2 --tiny
compare table3 --tiny
compare sweep --tiny
compare diag --tiny SRAD
compare probe --tiny --no-time
compare fidelity
compare ablation_apres --tiny
compare ablation_substrate --tiny
compare bypass_study --tiny
compare kernel-lint --oracle

# JSON artifacts must be byte-identical too (exhibit + sweep shapes).
json_compare fig10 --tiny
json_compare fig12 --tiny
json_compare sweep --tiny

if [ $fail -ne 0 ]; then
  echo "bench-smoke: FAILED"
  exit 1
fi
echo "bench-smoke: all binaries byte-identical across --jobs values"
