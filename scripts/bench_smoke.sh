#!/usr/bin/env bash
# `just bench-smoke` — the determinism gate of the parallel sweep harness.
#
# Runs every bench binary at the minimal (--tiny) scale twice, once with
# `--jobs 1` and once with `--jobs 2`, and byte-compares stdout; for the
# binaries that emit JSON artifacts it byte-compares those too. Any
# difference means the harness leaked thread-scheduling order into the
# output, which is a bug (see DESIGN.md §10).
#
# probe runs with --no-time because its wall-clock columns are the one
# deliberately non-deterministic output.
set -u
cd "$(dirname "$0")/.."
BIN=target/release
fail=0

compare() {
  local name="$1"
  shift
  local out1 out2 rc
  out1="$("$BIN/$name" "$@" --jobs 1 2>/dev/null)"
  rc=$?
  if [ $rc -ne 0 ]; then
    echo "FAIL $name: --jobs 1 exited $rc"
    fail=1
    return
  fi
  out2="$("$BIN/$name" "$@" --jobs 2 2>/dev/null)"
  rc=$?
  if [ $rc -ne 0 ]; then
    echo "FAIL $name: --jobs 2 exited $rc"
    fail=1
    return
  fi
  if [ "$out1" = "$out2" ]; then
    echo "ok   $name"
  else
    echo "FAIL $name: stdout differs between --jobs 1 and --jobs 2"
    diff <(printf '%s\n' "$out1") <(printf '%s\n' "$out2") | head -10
    fail=1
  fi
}

json_compare() {
  local name="$1"
  shift
  local d1 d2
  d1=$(mktemp -d)
  d2=$(mktemp -d)
  "$BIN/$name" "$@" --jobs 1 --json "$d1" >/dev/null 2>&1
  "$BIN/$name" "$@" --jobs 2 --json "$d2" >/dev/null 2>&1
  if diff -r "$d1" "$d2" >/dev/null 2>&1 && [ -n "$(ls -A "$d1")" ]; then
    echo "ok   $name (json artifacts)"
  else
    echo "FAIL $name: JSON artifacts differ (or none were written)"
    fail=1
  fi
  rm -rf "$d1" "$d2"
}

# A binary run with --no-time must not print a wall-clock figure on
# stdout OR stderr: `--no-time` promises a byte-comparable run end to
# end, and a stray "in 1.23s" / "4.56 sims/s" breaks that promise (the
# StageTimer/Progress paths print "-" or omit rates instead).
no_time_check() {
  local name="$1"
  shift
  local out
  out="$("$BIN/$name" "$@" --no-time --jobs 1 2>&1)"
  if [ $? -ne 0 ]; then
    echo "FAIL $name: --no-time run exited non-zero"
    fail=1
    return
  fi
  if printf '%s\n' "$out" | grep -Eq 'in [0-9]+\.[0-9]+s|[0-9.]+ sims/s|cycles/s|instr/s'; then
    echo "FAIL $name: timing leaked into --no-time output:"
    printf '%s\n' "$out" | grep -E 'in [0-9]+\.[0-9]+s|[0-9.]+ sims/s|cycles/s|instr/s' | head -5
    fail=1
  else
    echo "ok   $name (--no-time silent about wall time)"
  fi
}

# Skip-ahead equivalence gate: every exhibit must print byte-identical
# stdout under APRES_STEP_MODE=tick and APRES_STEP_MODE=skip (DESIGN.md
# §13 — skip-ahead elides only provably silent cycles, so the statistics
# are identical by construction, and this check keeps it that way).
mode_compare() {
  local name="$1"
  shift
  local out1 out2 rc
  out1="$(APRES_STEP_MODE=tick "$BIN/$name" "$@" --jobs 1 2>/dev/null)"
  rc=$?
  if [ $rc -ne 0 ]; then
    echo "FAIL $name: tick-mode run exited $rc"
    fail=1
    return
  fi
  out2="$(APRES_STEP_MODE=skip "$BIN/$name" "$@" --jobs 1 2>/dev/null)"
  rc=$?
  if [ $rc -ne 0 ]; then
    echo "FAIL $name: skip-mode run exited $rc"
    fail=1
    return
  fi
  if [ "$out1" = "$out2" ]; then
    echo "ok   $name (skip-ahead byte-identical to tick)"
  else
    echo "FAIL $name: stdout differs between step modes"
    diff <(printf '%s\n' "$out1") <(printf '%s\n' "$out2") | head -10
    fail=1
  fi
}

# JSON variant of the step-mode equivalence check.
mode_json_compare() {
  local name="$1"
  shift
  local d1 d2
  d1=$(mktemp -d)
  d2=$(mktemp -d)
  APRES_STEP_MODE=tick "$BIN/$name" "$@" --jobs 1 --json "$d1" >/dev/null 2>&1
  APRES_STEP_MODE=skip "$BIN/$name" "$@" --jobs 1 --json "$d2" >/dev/null 2>&1
  if diff -r "$d1" "$d2" >/dev/null 2>&1 && [ -n "$(ls -A "$d1")" ]; then
    echo "ok   $name (skip-ahead json identical to tick)"
  else
    echo "FAIL $name: JSON artifacts differ between step modes"
    fail=1
  fi
  rm -rf "$d1" "$d2"
}

# Epoch-engine equivalence gate: every exhibit must print byte-identical
# stdout under the serial engine (--sim-threads 0) and the epoch engine at
# 1 and 2 worker threads (DESIGN.md §14 — the barrier replays port traffic
# in a fixed order, so statistics are identical by construction, and this
# check keeps it that way). CSV artifacts are compared when the binary
# writes them.
sim_threads_compare() {
  local name="$1"
  shift
  local out0 outn rc n
  out0="$("$BIN/$name" "$@" --jobs 1 --sim-threads 0 2>/dev/null)"
  rc=$?
  if [ $rc -ne 0 ]; then
    echo "FAIL $name: serial-engine run exited $rc"
    fail=1
    return
  fi
  for n in 1 2; do
    outn="$("$BIN/$name" "$@" --jobs 1 --sim-threads "$n" 2>/dev/null)"
    rc=$?
    if [ $rc -ne 0 ]; then
      echo "FAIL $name: --sim-threads $n run exited $rc"
      fail=1
      return
    fi
    if [ "$out0" != "$outn" ]; then
      echo "FAIL $name: stdout differs between serial and --sim-threads $n"
      diff <(printf '%s\n' "$out0") <(printf '%s\n' "$outn") | head -10
      fail=1
      return
    fi
  done
  echo "ok   $name (epoch engine byte-identical to serial)"
}

# JSON+CSV variant of the epoch-engine equivalence check, crossed with
# both step modes so skip-ahead composes with the epoch barrier too.
sim_threads_json_compare() {
  local name="$1"
  shift
  local mode d0 d2
  for mode in tick skip; do
    d0=$(mktemp -d)
    d2=$(mktemp -d)
    APRES_STEP_MODE=$mode "$BIN/$name" "$@" --jobs 1 --sim-threads 0 \
      --json "$d0" --csv "$d0" >/dev/null 2>&1
    APRES_STEP_MODE=$mode "$BIN/$name" "$@" --jobs 1 --sim-threads 2 \
      --json "$d2" --csv "$d2" >/dev/null 2>&1
    if diff -r "$d0" "$d2" >/dev/null 2>&1 && [ -n "$(ls -A "$d0")" ]; then
      echo "ok   $name (epoch json+csv identical to serial, $mode mode)"
    else
      echo "FAIL $name: artifacts differ between serial and epoch engines ($mode mode)"
      fail=1
    fi
    rm -rf "$d0" "$d2"
  done
}

# Every exhibit and study binary, at the scale bench-smoke exercises.
compare fig2 --tiny
compare fig3 --tiny
compare fig4 --tiny
compare fig10 --tiny
compare fig11 --tiny
compare fig12 --tiny
compare fig13 --tiny
compare fig14 --tiny
compare fig15 --tiny
compare table1 --tiny
compare table2 --tiny
compare table3 --tiny
compare sweep --tiny
compare diag --tiny SRAD
compare probe --tiny --no-time
compare fidelity
compare ablation_apres --tiny
compare ablation_substrate --tiny
compare bypass_study --tiny
compare kernel-lint --oracle

# JSON artifacts must be byte-identical too (exhibit + sweep shapes).
json_compare fig10 --tiny
json_compare fig12 --tiny
json_compare sweep --tiny

# Skip-ahead ≡ tick for every simulating exhibit (stdout), plus the two
# JSON shapes. `--step-mode` reaches the binaries via APRES_STEP_MODE.
mode_compare fig2 --tiny
mode_compare fig3 --tiny
mode_compare fig4 --tiny
mode_compare fig10 --tiny
mode_compare fig11 --tiny
mode_compare fig12 --tiny
mode_compare fig13 --tiny
mode_compare fig14 --tiny
mode_compare fig15 --tiny
mode_compare table1 --tiny
mode_compare sweep --tiny
mode_compare diag --tiny SRAD
mode_compare ablation_apres --tiny
mode_compare ablation_substrate --tiny
mode_compare bypass_study --tiny
mode_json_compare fig10 --tiny
mode_json_compare sweep --tiny

# Serial ≡ epoch engine for every simulating exhibit (stdout), plus the
# two artifact shapes crossed with both step modes. `--sim-threads`
# parallelises inside each simulation; nothing may leak into results.
sim_threads_compare fig2 --tiny
sim_threads_compare fig3 --tiny
sim_threads_compare fig4 --tiny
sim_threads_compare fig10 --tiny
sim_threads_compare fig11 --tiny
sim_threads_compare fig12 --tiny
sim_threads_compare fig13 --tiny
sim_threads_compare fig14 --tiny
sim_threads_compare fig15 --tiny
sim_threads_compare table1 --tiny
sim_threads_compare sweep --tiny
sim_threads_compare diag --tiny SRAD
sim_threads_compare ablation_apres --tiny
sim_threads_compare ablation_substrate --tiny
sim_threads_compare bypass_study --tiny
sim_threads_json_compare fig10 --tiny
sim_threads_json_compare sweep --tiny

# --no-time runs must be silent about wall time everywhere (the Clock
# routing of the bench binaries plus the harness's no-time summary).
no_time_check probe --tiny
no_time_check table1 --tiny
no_time_check fidelity
no_time_check fig10 --tiny

# perf_trajectory's timing-free path: --dry-run must exit 0, print no
# timing figures (measured rates belong to `just perf-gate`, not the
# determinism smoke), and be byte-identical across invocations.
ptj1="$("$BIN/perf_trajectory" --dry-run 2>&1)"
if [ $? -ne 0 ]; then
  echo "FAIL perf_trajectory: --dry-run exited non-zero"
  fail=1
elif printf '%s\n' "$ptj1" | grep -Eq 'in [0-9]+\.[0-9]+s|[0-9.]+ sims/s|cycles/s|instr/s'; then
  echo "FAIL perf_trajectory: timing leaked into --dry-run output"
  fail=1
elif [ "$ptj1" != "$("$BIN/perf_trajectory" --dry-run 2>&1)" ]; then
  echo "FAIL perf_trajectory: --dry-run output not reproducible"
  fail=1
else
  echo "ok   perf_trajectory (--dry-run timing-free and reproducible)"
fi

if [ $fail -ne 0 ]; then
  echo "bench-smoke: FAILED"
  exit 1
fi
echo "bench-smoke: all binaries byte-identical across --jobs, step modes, and --sim-threads"
