//! End-to-end tests of the static-analysis pipeline through the facade:
//! the oracle JSON contract the lint pipeline publishes, and the
//! verifier's gate in front of the simulator.

use apres::analysis::fixtures;
use apres::common::json::{parse, Json};
use apres::{analyze, Benchmark, GpuConfig, Simulation};

/// The acceptance contract for the per-kernel SAP-accuracy JSON: every
/// shipped workload reports a `misclassification_rate` of exactly zero,
/// with one verdict per static load.
#[test]
fn oracle_json_reports_zero_misclassification_for_the_suite() {
    for b in Benchmark::ALL {
        let kernel = b.kernel();
        let report = analyze(&kernel, 32, true);
        let doc = parse(&report.to_json().to_compact())
            .unwrap_or_else(|e| panic!("{}: invalid JSON: {e:?}", b.label()));
        let oracle = doc.get("oracle").unwrap_or(&Json::Null);
        assert_eq!(
            oracle.get("misclassification_rate").and_then(Json::as_f64),
            Some(0.0),
            "{}: {oracle:?}",
            b.label()
        );
        let loads = oracle.get("loads").and_then(Json::as_arr).unwrap_or(&[]);
        assert_eq!(
            loads.len(),
            kernel.load_sites().count(),
            "{}: one verdict per load",
            b.label()
        );
        for load in loads {
            assert_eq!(load.get("agrees"), Some(&Json::Bool(true)));
            assert!(load.get("class").and_then(|c| c.get("kind")).is_some());
        }
    }
}

/// Defective kernels never reach cycle 0: the facade's `run` gate returns
/// the typed validation error with the offending diagnostics attached.
#[test]
fn simulation_gate_rejects_defective_fixtures() {
    for kernel in [
        fixtures::self_dependency(),
        fixtures::forward_cycle(),
        fixtures::dangling_slot(),
        fixtures::divergent_barrier(),
    ] {
        let name = kernel.name().to_owned();
        let err = Simulation::new(kernel)
            .config(GpuConfig::small_test())
            .run()
            .expect_err(&name);
        assert_eq!(err.class(), "kernel-validation", "{name}: {err}");
    }
}

/// Warning-level defects (a dead load) do not gate simulation — the run
/// proceeds — but they do fail the lint gate.
#[test]
fn warnings_lint_dirty_but_still_simulate() {
    let kernel = fixtures::dead_load();
    let report = analyze(&kernel, 32, false);
    assert!(!report.report.has_errors());
    assert!(!report.is_clean());
    let result = Simulation::new(kernel)
        .config(GpuConfig::small_test())
        .run()
        .unwrap_or_else(|e| panic!("dead load must still simulate: {e}"));
    assert!(result.termination.is_drained());
}
