//! Source-level audit: the config-validation, MSHR-allocation,
//! simulation-facade, result-cache, and batch-service paths must contain
//! no panicking escape hatches in non-test code. The workspace lints already deny `clippy::unwrap_used` /
//! `clippy::expect_used` in library crates; this test additionally rejects
//! `panic!`-family macros on the critical paths, so a regression fails
//! `cargo test` even when clippy is not run.

// Integration tests may use the ergonomic panicking forms freely.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use std::path::Path;

const AUDITED: &[&str] = &[
    "crates/common/src/config.rs",
    "crates/mem/src/mshr.rs",
    "crates/mem/src/l1.rs",
    "crates/mem/src/memsys.rs",
    "crates/sm/src/gpu.rs",
    "crates/core/src/sim.rs",
    "crates/bench/src/cache.rs",
    "crates/serve/src/batch.rs",
    "crates/serve/src/service.rs",
];

const FORBIDDEN: &[&str] = &[
    ".unwrap()",
    ".expect(",
    "panic!(",
    "unreachable!(",
    "todo!(",
    "unimplemented!(",
];

/// Strips the trailing `#[cfg(test)]` module (tests may unwrap freely).
fn non_test_code(src: &str) -> &str {
    match src.find("#[cfg(test)]") {
        Some(pos) => &src[..pos],
        None => src,
    }
}

#[test]
fn critical_paths_contain_no_panicking_escape_hatches() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut violations = Vec::new();
    for rel in AUDITED {
        let path = root.join(rel);
        let src = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("audited file {rel} unreadable: {e}"));
        for (idx, line) in non_test_code(&src).lines().enumerate() {
            let code = line.trim_start();
            // Comments and doc comments may *talk about* panics.
            if code.starts_with("//") {
                continue;
            }
            for pat in FORBIDDEN {
                if code.contains(pat) {
                    violations.push(format!("{rel}:{}: {}", idx + 1, code.trim()));
                }
            }
        }
    }
    assert!(
        violations.is_empty(),
        "panicking escape hatches on audited paths:\n{}",
        violations.join("\n")
    );
}

#[test]
fn audited_files_exist() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    for rel in AUDITED {
        assert!(root.join(rel).is_file(), "audited path {rel} missing");
    }
}
