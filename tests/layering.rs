//! Architecture-layering test: the crate graph must stay a DAG with no
//! back-edges against the documented layer order.
//!
//! The workspace layers are (low to high):
//!
//! `common < {kernel, lint} < mem < sm < {sched, prefetch} < core <
//! workloads < analysis < bench < serve`
//!
//! `apres-lint` sits at rank 1: it audits source text, so it needs only
//! the diagnostics types from `gpu-common` and nothing from the
//! simulator stack (and nothing may depend on it — it is a leaf tool
//! reached via its `workspace-lint` binary).
//!
//! Each member crate's manifest is parsed (in-tree, string-level — the
//! workspace is dependency-free by design) and every internal dependency
//! must point at a strictly lower layer. A violation means someone added an
//! upward edge — e.g. `gpu-kernel` reaching into `apres-core` — which is
//! how layered simulators rot into a ball of mutual knowledge.

use std::collections::BTreeMap;
use std::fs;
use std::path::Path;

/// Layer rank per workspace member. Crates on the same rank may not depend
/// on each other.
fn layer_ranks() -> BTreeMap<&'static str, u32> {
    BTreeMap::from([
        ("gpu-common", 0),
        ("gpu-kernel", 1),
        ("apres-lint", 1),
        ("gpu-mem", 2),
        ("gpu-sm", 3),
        ("gpu-sched", 4),
        ("gpu-prefetch", 4),
        ("apres-core", 5),
        ("gpu-workloads", 6),
        ("gpu-analysis", 7),
        ("apres-bench", 8),
        ("apres-serve", 9),
    ])
}

/// Extracts `(package_name, internal_dependency_names)` from a manifest.
/// String-level parsing is enough: workspace manifests are machine-regular
/// (`name = "..."` in `[package]`, `<dep>.workspace = true` or
/// `<dep> = { ... }` lines in dependency sections).
fn parse_manifest(text: &str) -> (String, Vec<String>) {
    let mut name = String::new();
    let mut deps = Vec::new();
    let mut section = String::new();
    for raw in text.lines() {
        let line = raw.trim();
        if line.starts_with('[') {
            section = line.trim_matches(['[', ']']).to_owned();
            continue;
        }
        if section == "package" {
            if let Some(rest) = line.strip_prefix("name") {
                if let Some(v) = rest.split('"').nth(1) {
                    name = v.to_owned();
                }
            }
        }
        if matches!(
            section.as_str(),
            "dependencies" | "dev-dependencies" | "build-dependencies"
        ) && !line.is_empty()
            && !line.starts_with('#')
        {
            let dep: String = line
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '-' || *c == '_')
                .collect();
            if !dep.is_empty() {
                deps.push(dep);
            }
        }
    }
    (name, deps)
}

#[test]
fn crate_graph_has_no_back_edges() {
    let ranks = layer_ranks();
    let crates_dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("crates");
    let mut seen = 0;
    let entries = fs::read_dir(&crates_dir).unwrap_or_else(|e| {
        panic!("cannot read {}: {e}", crates_dir.display());
    });
    for entry in entries {
        let manifest = entry
            .unwrap_or_else(|e| panic!("bad dir entry: {e}"))
            .path()
            .join("Cargo.toml");
        let text = fs::read_to_string(&manifest)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", manifest.display()));
        let (name, deps) = parse_manifest(&text);
        let Some(&rank) = ranks.get(name.as_str()) else {
            panic!("crate {name} has no assigned layer rank — update tests/layering.rs");
        };
        seen += 1;
        for dep in deps {
            // Only internal edges are ranked; the workspace has no external
            // dependencies, so anything unranked would itself be a failure
            // of the hermetic-build rule.
            let Some(&dep_rank) = ranks.get(dep.as_str()) else {
                panic!("{name} depends on unranked crate {dep} (external dependency?)");
            };
            assert!(
                dep_rank < rank,
                "layering violation: {name} (layer {rank}) depends on {dep} \
                 (layer {dep_rank}); edges must point strictly downward"
            );
        }
    }
    assert_eq!(
        seen,
        ranks.len(),
        "workspace member count changed — update tests/layering.rs"
    );
}

#[test]
fn manifest_parser_reads_this_workspace_shape() {
    let (name, deps) = parse_manifest(
        "[package]\nname = \"gpu-analysis\"\n\n[lints]\nworkspace = true\n\n\
         [dependencies]\ngpu-common.workspace = true\napres-core = { path = \"x\" }\n",
    );
    assert_eq!(name, "gpu-analysis");
    assert_eq!(deps, vec!["gpu-common".to_owned(), "apres-core".to_owned()]);
}
