//! Property-based integration tests: random small kernels through the full
//! simulator must preserve every accounting invariant under every policy,
//! stay bit-exactly deterministic, and — with a fault plan armed — remain
//! deterministic fault-for-fault as well.

use apres::common::check::{run_cases, Gen};
use apres::{
    AddressPattern, FaultPlan, GpuConfig, Kernel, PrefetcherChoice, RunResult, SchedulerChoice,
    Simulation,
};

/// One random address pattern with bounded footprints.
fn pattern(g: &mut Gen) -> AddressPattern {
    let base = g.range(0, 3) * 0x10_0000;
    match g.range(0, 2) {
        0 => AddressPattern::SharedStream {
            base,
            iter_stride: g.range(1, 511) as i64,
            noise: g.prob() / 2.0,
            region_bytes: 64 * 1024,
        },
        1 => {
            let magnitude = g.range(64, 8192) as i64;
            AddressPattern::WarpStrided {
                base,
                warp_stride: if g.chance(0.5) { magnitude } else { -magnitude },
                iter_stride: g.range(0, 4095) as i64,
                lane_stride: *g.choose(&[4u64, 64, 136]),
                wrap_bytes: if g.chance(0.5) {
                    None
                } else {
                    Some(g.range(64, 4096) * 1024)
                },
                noise: g.prob() / 2.0,
            }
        }
        _ => {
            AddressPattern::irregular(base, g.range(16, 511) * 1024, g.range(1, 63) * 1024, g.prob())
        }
    }
}

/// A random 2–6 instruction kernel: loads with generated patterns, a
/// dependent ALU chain, an optional store.
fn kernel(g: &mut Gen) -> Kernel {
    let n = g.usize_range(1, 2);
    let iterations = g.range(1, 5);
    let seed = g.range(0, 998);
    let with_store = g.chance(0.5);
    let mut b = Kernel::builder("prop").seed(seed);
    for _ in 0..n {
        b = b.load(pattern(g), &[]);
    }
    let deps: Vec<usize> = (0..n).collect();
    b = b.alu(8, &deps);
    if with_store {
        b = b.store(AddressPattern::warp_strided(0x40_0000, 128, 4096, 4), &[n]);
    }
    b.iterations(iterations).build()
}

fn check(r: &RunResult, tag: &str) -> Result<(), String> {
    if r.timed_out {
        return Err(format!("{tag}: timed out"));
    }
    if r.l1.hits + r.l1.misses() != r.l1.accesses {
        return Err(format!("{tag}: hits+misses != accesses"));
    }
    if r.l1.hit_after_hit + r.l1.hit_after_miss != r.l1.hits {
        return Err(format!("{tag}: hit split broken"));
    }
    if r.mem.completed_loads != r.sim.loads {
        return Err(format!(
            "{tag}: completed loads {} != issued loads {}",
            r.mem.completed_loads, r.sim.loads
        ));
    }
    if r.sim.loads + r.sim.stores > r.sim.instructions {
        return Err(format!("{tag}: instruction mix inconsistent"));
    }
    // Per-PC stats are consistent with the aggregate.
    let pc_acc: u64 = r.per_pc.iter().map(|(_, s)| s.accesses).sum();
    let pc_hits: u64 = r.per_pc.iter().map(|(_, s)| s.hits).sum();
    if pc_acc != r.l1.accesses {
        return Err(format!("{tag}: per-PC access sum"));
    }
    if pc_hits != r.l1.hits {
        return Err(format!("{tag}: per-PC hit sum"));
    }
    Ok(())
}

#[test]
fn random_kernels_preserve_invariants() {
    run_cases(24, |_, g| {
        let kernel = kernel(g);
        let mut cfg = GpuConfig::small_test();
        cfg.core.warps_per_sm = 8;
        for (s, p) in [
            (SchedulerChoice::Lrr, PrefetcherChoice::None),
            (SchedulerChoice::Laws, PrefetcherChoice::Sap),
            (SchedulerChoice::Ccws, PrefetcherChoice::Str),
        ] {
            let r = Simulation::new(kernel.clone())
                .config(cfg.clone())
                .scheduler(s)
                .prefetcher(p)
                .max_cycles(2_000_000)
                .run()
                .map_err(|e| format!("{s:?}+{p:?}: unexpected SimError [{}] {e}", e.class()))?;
            check(&r, &format!("{s:?}+{p:?}"))?;
        }
        Ok(())
    });
}

#[test]
fn random_kernels_deterministic() {
    run_cases(24, |_, g| {
        let kernel = kernel(g);
        let cfg = GpuConfig::small_test();
        let run = || {
            Simulation::new(kernel.clone())
                .config(cfg.clone())
                .apres()
                .max_cycles(2_000_000)
                .run()
                .map_err(|e| format!("unexpected SimError [{}] {e}", e.class()))
        };
        let a = run()?;
        let b = run()?;
        if a.cycles != b.cycles {
            return Err(format!("cycles differ: {} vs {}", a.cycles, b.cycles));
        }
        if a.l1 != b.l1 {
            return Err("cache stats differ".into());
        }
        if a.per_pc != b.per_pc {
            return Err("per-PC stats differ".into());
        }
        Ok(())
    });
}

/// A random *survivable* fault plan (delays, MSHR bursts, SAP corruption —
/// nothing that strands a request forever).
fn survivable_plan(g: &mut Gen) -> FaultPlan {
    let mut plan = FaultPlan::seeded(g.u64());
    if g.chance(0.7) {
        plan = plan.delaying_dram_responses(g.prob(), g.range(1, 400));
    }
    if g.chance(0.5) {
        plan = plan.exhausting_mshrs(g.range(50, 400), g.range(1, 40));
    }
    if g.chance(0.7) {
        plan = plan.corrupting_sap(g.prob());
    }
    plan
}

#[test]
fn survivable_faults_never_panic_and_stay_invariant() {
    run_cases(16, |_, g| {
        let kernel = kernel(g);
        let plan = survivable_plan(g);
        let mut cfg = GpuConfig::small_test();
        cfg.core.warps_per_sm = 8;
        let r = Simulation::new(kernel)
            .config(cfg)
            .apres()
            .fault_plan(plan.clone())
            .max_cycles(4_000_000)
            .run()
            .map_err(|e| format!("survivable plan {plan:?} errored: [{}] {e}", e.class()))?;
        // Delays and refusals cost cycles, never correctness.
        check(&r, &format!("{plan:?}"))
    });
}

#[test]
fn same_fault_seed_gives_byte_identical_outcome() {
    run_cases(12, |_, g| {
        let kernel = kernel(g);
        let plan = survivable_plan(g);
        let run = || {
            Simulation::new(kernel.clone())
                .config(GpuConfig::small_test())
                .apres()
                .fault_plan(plan.clone())
                .max_cycles(4_000_000)
                .run()
                .map_err(|e| format!("unexpected SimError [{}] {e}", e.class()))
        };
        let a = run()?;
        let b = run()?;
        if (a.cycles, a.faults, a.l1.clone(), a.prefetch) != (b.cycles, b.faults, b.l1, b.prefetch)
        {
            return Err(format!("fault runs diverged under plan {plan:?}"));
        }
        Ok(())
    });
}
