//! Property-based integration tests: random small kernels through the full
//! simulator must preserve every accounting invariant under every policy.

use apres::{
    AddressPattern, GpuConfig, Kernel, PrefetcherChoice, RunResult, SchedulerChoice, Simulation,
};
use proptest::prelude::*;

/// Strategy for one random address pattern with bounded footprints.
fn pattern_strategy() -> impl Strategy<Value = AddressPattern> {
    prop_oneof![
        // Shared stream.
        (0u64..4, 1i64..512, 0.0f64..0.5).prop_map(|(base, stride, noise)| {
            AddressPattern::SharedStream {
                base: base * 0x10_0000,
                iter_stride: stride,
                noise,
                region_bytes: 64 * 1024,
            }
        }),
        // Warp-strided, optionally wrapped/negative.
        (
            0u64..4,
            prop_oneof![(-8192i64..-64), (64i64..8192)],
            0i64..4096,
            prop_oneof![Just(4u64), Just(64), Just(136)],
            prop_oneof![Just(None), (64u64..4096).prop_map(|w| Some(w * 1024))],
            0.0f64..0.5
        )
            .prop_map(|(base, ws, is, ls, wrap, noise)| AddressPattern::WarpStrided {
                base: base * 0x10_0000,
                warp_stride: ws,
                iter_stride: is,
                lane_stride: ls,
                wrap_bytes: wrap,
                noise,
            }),
        // Irregular.
        (0u64..4, 16u64..512, 1u64..64, 0.0f64..1.0).prop_map(|(base, ws, hot, p)| {
            AddressPattern::irregular(base * 0x10_0000, ws * 1024, hot * 1024, p)
        }),
    ]
}

/// Builds a random 2–6 instruction kernel: loads with the generated
/// patterns, a dependent ALU chain, an optional store.
fn kernel_strategy() -> impl Strategy<Value = Kernel> {
    (
        proptest::collection::vec(pattern_strategy(), 1..3),
        1u64..6,   // iterations
        0u64..999, // seed
        any::<bool>(),
    )
        .prop_map(|(patterns, iters, seed, with_store)| {
            let mut b = Kernel::builder("prop").seed(seed);
            let n = patterns.len();
            for p in patterns {
                b = b.load(p, &[]);
            }
            let deps: Vec<usize> = (0..n).collect();
            b = b.alu(8, &deps);
            if with_store {
                b = b.store(AddressPattern::warp_strided(0x40_0000, 128, 4096, 4), &[n]);
            }
            b.iterations(iters).build()
        })
}

fn check(r: &RunResult, tag: &str) {
    assert!(!r.timed_out, "{tag}: timed out");
    assert_eq!(r.l1.hits + r.l1.misses(), r.l1.accesses, "{tag}");
    assert_eq!(r.l1.hit_after_hit + r.l1.hit_after_miss, r.l1.hits, "{tag}");
    assert_eq!(r.mem.completed_loads, r.sim.loads, "{tag}");
    assert!(r.sim.loads + r.sim.stores <= r.sim.instructions, "{tag}");
    // Per-PC stats are consistent with the aggregate.
    let pc_acc: u64 = r.per_pc.iter().map(|(_, s)| s.accesses).sum();
    let pc_hits: u64 = r.per_pc.iter().map(|(_, s)| s.hits).sum();
    assert_eq!(pc_acc, r.l1.accesses, "{tag}: per-PC access sum");
    assert_eq!(pc_hits, r.l1.hits, "{tag}: per-PC hit sum");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_kernels_preserve_invariants(kernel in kernel_strategy()) {
        let mut cfg = GpuConfig::small_test();
        cfg.core.warps_per_sm = 8;
        for (s, p) in [
            (SchedulerChoice::Lrr, PrefetcherChoice::None),
            (SchedulerChoice::Laws, PrefetcherChoice::Sap),
            (SchedulerChoice::Ccws, PrefetcherChoice::Str),
        ] {
            let r = Simulation::new(kernel.clone())
                .config(cfg.clone())
                .scheduler(s)
                .prefetcher(p)
                .max_cycles(2_000_000)
                .run();
            check(&r, &format!("{s:?}+{p:?} on {kernel:?}"));
        }
    }

    #[test]
    fn random_kernels_deterministic(kernel in kernel_strategy()) {
        let cfg = GpuConfig::small_test();
        let run = || {
            Simulation::new(kernel.clone())
                .config(cfg.clone())
                .apres()
                .max_cycles(2_000_000)
                .run()
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a.cycles, b.cycles);
        prop_assert_eq!(a.l1, b.l1);
        prop_assert_eq!(a.per_pc, b.per_pc);
    }
}
