//! Integration tests asserting the qualitative claims of the paper that the
//! reproduction must preserve (directions and orderings, not absolute
//! numbers — see EXPERIMENTS.md).

// Integration tests may use the ergonomic panicking forms freely.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use apres::{
    Benchmark, EnergyModel, GpuConfig, HwCost, PrefetcherChoice, RunResult, SchedulerChoice,
    Simulation,
};

fn cfg() -> GpuConfig {
    let mut c = GpuConfig::paper_baseline();
    c.core.num_sms = 4;
    c
}

fn run(b: Benchmark, s: SchedulerChoice, p: PrefetcherChoice) -> RunResult {
    Simulation::new(b.kernel_scaled(16))
        .config(cfg())
        .scheduler(s)
        .prefetcher(p)
        .max_cycles(10_000_000)
        .run()
        .expect("paper-claim workloads run to completion")
}

fn geomean(v: &[f64]) -> f64 {
    (v.iter().map(|x| x.ln()).sum::<f64>() / v.len() as f64).exp()
}

/// Section I / Fig. 10: APRES outperforms the baseline on memory-intensive
/// applications on average.
#[test]
fn apres_beats_baseline_on_memory_intensive_geomean() {
    let mut speedups = Vec::new();
    for b in Benchmark::MEMORY_INTENSIVE {
        let base = run(b, SchedulerChoice::Lrr, PrefetcherChoice::None);
        let apres = run(b, SchedulerChoice::Laws, PrefetcherChoice::Sap);
        speedups.push(apres.speedup_over(&base));
    }
    let gm = geomean(&speedups);
    assert!(gm > 1.0, "memory-intensive geomean speedup {gm:.3} ≤ 1");
}

/// Table II: the APRES hardware budget is exactly 724 bytes.
#[test]
fn hardware_cost_matches_table_ii() {
    let cost = HwCost::compute(&apres::common::config::ApresConfig::table_ii(), 48);
    assert_eq!(cost.total_bytes(), 724);
}

/// Fig. 2: a 32 MB L1 eliminates most capacity/conflict misses on the
/// thrashing workloads and speeds them up.
#[test]
fn huge_l1_removes_capacity_misses_on_km() {
    let small = run(Benchmark::Km, SchedulerChoice::Lrr, PrefetcherChoice::None);
    let mut big_cfg = cfg();
    big_cfg.l1.capacity_bytes = 32 * 1024 * 1024;
    let big = Simulation::new(Benchmark::Km.kernel_scaled(16))
        .config(big_cfg)
        .max_cycles(10_000_000)
        .run()
        .expect("32MB-L1 KM runs to completion");
    let cc = |r: &RunResult| r.l1.capacity_conflict_misses as f64 / r.l1.accesses.max(1) as f64;
    assert!(
        cc(&big) < cc(&small) / 4.0,
        "32MB L1 cap+conf {:.3} vs 32KB {:.3}",
        cc(&big),
        cc(&small)
    );
    assert!(big.speedup_over(&small) > 1.2, "{:.3}", big.speedup_over(&small));
}

/// Section V-C: APRES achieves a higher hit-after-hit ratio than the
/// baseline on the cache-sensitive KM workload (group scheduling produces
/// consecutive hits).
#[test]
fn apres_improves_hit_after_hit_on_km() {
    let base = run(Benchmark::Km, SchedulerChoice::Lrr, PrefetcherChoice::None);
    let apres = run(Benchmark::Km, SchedulerChoice::Laws, PrefetcherChoice::Sap);
    assert!(
        apres.l1.hit_after_hit_ratio() > base.l1.hit_after_hit_ratio(),
        "APRES hh {:.3} vs baseline hh {:.3}",
        apres.l1.hit_after_hit_ratio(),
        base.l1.hit_after_hit_ratio()
    );
    assert!(apres.l1.miss_rate() < base.l1.miss_rate());
}

/// Section V-B: CCWS's throttling also beats the baseline on KM (the paper
/// has CCWS strongest there).
#[test]
fn ccws_beats_baseline_on_km() {
    let base = run(Benchmark::Km, SchedulerChoice::Lrr, PrefetcherChoice::None);
    let ccws = run(Benchmark::Km, SchedulerChoice::Ccws, PrefetcherChoice::Str);
    assert!(
        ccws.speedup_over(&base) > 1.02,
        "CCWS+STR on KM: {:.3}",
        ccws.speedup_over(&base)
    );
}

/// Figure 5's cooperation: on the strided LUD workload, APRES prefetches
/// are plentiful, mostly correct, and rarely evicted early.
#[test]
fn sap_cooperation_on_lud() {
    let apres = run(Benchmark::Lud, SchedulerChoice::Laws, PrefetcherChoice::Sap);
    assert!(apres.prefetch.issued > 100, "{:?}", apres.prefetch);
    assert!(
        apres.prefetch.accuracy() > 0.5,
        "accuracy {:.3}",
        apres.prefetch.accuracy()
    );
    assert!(
        apres.prefetch.early_eviction_ratio() < 0.3,
        "early eviction {:.3}",
        apres.prefetch.early_eviction_ratio()
    );
    let base = run(Benchmark::Lud, SchedulerChoice::Lrr, PrefetcherChoice::None);
    assert!(apres.speedup_over(&base) > 1.0);
}

/// Section V-E: APRES's prefetch adaptivity keeps data traffic close to the
/// baseline (within ±20% on every benchmark).
#[test]
fn apres_traffic_stays_bounded() {
    for b in [Benchmark::Lud, Benchmark::Srad, Benchmark::Km, Benchmark::Cs] {
        let base = run(b, SchedulerChoice::Lrr, PrefetcherChoice::None);
        let apres = run(b, SchedulerChoice::Laws, PrefetcherChoice::Sap);
        let ratio = apres.mem.bytes_to_sm as f64 / base.mem.bytes_to_sm.max(1) as f64;
        assert!(
            (0.5..1.2).contains(&ratio),
            "{}: traffic ratio {ratio:.3}",
            b.label()
        );
    }
}

/// Section V-F: the energy of APRES's own tables is under 3% of the total,
/// and APRES does not increase total energy on its winning workloads.
#[test]
fn apres_energy_overhead_small() {
    let model = EnergyModel::new();
    let base = run(Benchmark::Lud, SchedulerChoice::Lrr, PrefetcherChoice::None);
    let apres = run(Benchmark::Lud, SchedulerChoice::Laws, PrefetcherChoice::Sap);
    let frac = model.apres_overhead_fraction(&apres, 4);
    assert!(frac < 0.03, "table energy fraction {frac:.4}");
    // Prefetch probes add L1 events, so per-app energy may rise somewhat —
    // the paper sees the same on prefetch-heavy apps (ST, Section V-F,
    // bounded below +10%); we allow a similar band and separately require
    // that DRAM activity (the dominant energy term) stays bounded.
    let norm = model.normalized(&apres, &base, 4);
    assert!(norm < 1.2, "normalized energy {norm:.3}");
    assert!(
        (apres.energy.dram_accesses as f64)
            < 1.2 * base.energy.dram_accesses.max(1) as f64,
        "DRAM activity exploded: {} vs {}",
        apres.energy.dram_accesses,
        base.energy.dram_accesses
    );
}

/// The large-stride premise of Section III-C: SLD cannot cover Table I's
/// strides, so STR out-prefetches SLD on the large-stride KM workload.
#[test]
fn str_beats_sld_on_large_strides() {
    let str_run = run(Benchmark::Km, SchedulerChoice::Lrr, PrefetcherChoice::Str);
    let sld_run = run(Benchmark::Km, SchedulerChoice::Lrr, PrefetcherChoice::Sld);
    assert!(
        str_run.prefetch.correct() >= sld_run.prefetch.correct(),
        "STR correct {} < SLD correct {}",
        str_run.prefetch.correct(),
        sld_run.prefetch.correct()
    );
}
