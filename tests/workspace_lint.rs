//! Workspace self-audit: the shipped tree must be clean under the
//! `apres-lint` rule set with an **empty baseline** — the same gate
//! `just lint-workspace` (inside `just check`) runs via the
//! `workspace-lint --deny-warnings` binary, so a determinism hazard
//! fails `cargo test` even when `just` is not installed.
//!
//! This supersedes the old grep-based `panic_free_paths.rs` audit: the
//! panic rules now run as the lint's `panic-path` pass over the same
//! file list ([`apres_lint::workspace::PANIC_AUDITED`]), through a lexer
//! that — unlike grep — sees through strings, comments, and
//! `#[cfg(test)]` modules.
//!
//! The `hash-iter` rule's remediation direction is the flat-vs-ordered
//! container policy of DESIGN.md §13: hot lookup paths use flat sorted
//! `Vec`s (MSHR file, L1 per-PC stats, LSU outstanding ops — all
//! deterministic by construction), `BTreeMap`/`BTreeSet` only where key
//! order is load-bearing (event queues) or the set is tiny. A clean scan
//! here means that policy is holding, not merely that `HashMap` is gone.

// Integration tests may use the ergonomic panicking forms freely.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use apres_lint::workspace::{lint_workspace, Baseline, PANIC_AUDITED};
use std::path::Path;

fn repo_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn shipped_workspace_is_clean_with_empty_baseline() {
    let report = lint_workspace(repo_root(), &Baseline::default())
        .expect("workspace scan must succeed");
    assert!(
        report.files_scanned >= 90,
        "scan looks truncated: only {} files (walker regression?)",
        report.files_scanned
    );
    let diag = report.to_report();
    assert!(
        diag.is_clean(),
        "determinism lint found {} active finding(s):\n{}",
        report.active(),
        diag.diagnostics()
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn shipped_baseline_file_is_empty() {
    // The acceptance bar for this gate is *zero grandfathered debt*:
    // lint-baseline.txt exists (so the `just` recipe can pass it
    // unconditionally) but contains no entries.
    let path = repo_root().join("lint-baseline.txt");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    let baseline = Baseline::parse(&text).expect("baseline must parse");
    let report = lint_workspace(repo_root(), &baseline).expect("workspace scan");
    assert_eq!(
        report.findings.iter().filter(|f| f.baselined).count(),
        0,
        "lint-baseline.txt must stay empty: fix findings, don't suppress them"
    );
    assert!(
        report.stale_baseline.is_empty(),
        "stale baseline entries: {:?}",
        report.stale_baseline
    );
}

#[test]
fn audited_files_exist() {
    // A renamed critical-path file must move its audit entry with it,
    // not silently drop out of the panic-path rule's scope.
    for rel in PANIC_AUDITED {
        assert!(
            repo_root().join(rel).is_file(),
            "audited path {rel} missing — update apres_lint::workspace::PANIC_AUDITED"
        );
    }
}

#[test]
fn audit_covers_the_lint_itself() {
    for own in [
        "crates/lint/src/lexer.rs",
        "crates/lint/src/rules.rs",
        "crates/lint/src/workspace.rs",
    ] {
        assert!(
            PANIC_AUDITED.contains(&own),
            "{own} must stay on the panic audit: a panicking linter takes \
             down `just check` with no diagnostic"
        );
    }
}

#[test]
fn escape_hatches_stay_rare_and_narrowly_scoped() {
    // The `// lint: allow(...)` hatch exists for the Clock implementation,
    // the harness's TTY progress path (wall-clock), and the epoch barrier's
    // shard-exchange channels (shared-mut, pinned to crates/sm/src/epoch.rs).
    // If allows proliferate, spread to other files, or new rules start
    // being waived, the lint is being routed around — fail loudly with the
    // full inventory.
    let mut allows: Vec<(String, String)> = Vec::new();
    for dir in ["crates", "src"] {
        collect_allows(&repo_root().join(dir), &mut allows);
    }
    // Doc comments *describing* the hatch syntax (`allow(<rule>)`) are
    // captured by the lexer but can never waive anything: only a real
    // rule ID matches a finding. Audit the effective waivers.
    allows.retain(|(_, rule)| apres_lint::RULE_IDS.contains(&rule.as_str()));
    let epoch_file = repo_root().join("crates/sm/src/epoch.rs");
    let shared_mut: Vec<_> = allows
        .iter()
        .filter(|(_, rule)| rule == "shared-mut")
        .collect();
    assert!(
        shared_mut
            .iter()
            .all(|(at, _)| at.starts_with(&format!("{}:", epoch_file.display()))),
        "shared-mut may only be waived by the epoch barrier \
         (crates/sm/src/epoch.rs), found: {shared_mut:?}"
    );
    assert!(
        shared_mut.len() <= 4,
        "epoch-barrier channel waivers grew to {}: {shared_mut:?} — the \
         carve-out is two type aliases and one constructor call",
        shared_mut.len()
    );
    let unexpected: Vec<_> = allows
        .iter()
        .filter(|(_, rule)| rule != "wall-clock" && rule != "shared-mut")
        .collect();
    assert!(
        unexpected.is_empty(),
        "only wall-clock and epoch-barrier shared-mut findings may be \
         waived in-source, found: {unexpected:?}"
    );
    assert!(
        allows.len() <= 10,
        "escape-hatch count grew to {}: {allows:?} — fix findings instead \
         of waiving them",
        allows.len()
    );
}

fn collect_allows(dir: &Path, out: &mut Vec<(String, String)>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_allows(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            let src = std::fs::read_to_string(&path).unwrap_or_default();
            for allow in apres_lint::lexer::lex(&src).allows {
                out.push((format!("{}:{}", path.display(), allow.line), allow.rule));
            }
        }
    }
}
