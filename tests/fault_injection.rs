//! Fault-injection integration tests: every class of injected fault must
//! yield either a typed [`SimError`] or graceful degradation — never a
//! panic, never an unbounded hang.
//!
//! Covered fault classes:
//!
//! 1. dropped DRAM responses  → watchdog timeout with a named diagnosis;
//! 2. delayed DRAM responses  → completes, slower, delays counted;
//! 3. MSHR exhaustion bursts  → completes, refusals absorbed by retry;
//! 4. corrupted SAP predictions → completes, corruptions only cost cycles;
//! 5. dropped NoC requests    → watchdog timeout;
//! 6. fuzzed config geometry  → up-front `ConfigValidation` rejection;
//! 7. cycle-budget exhaustion → structured `BudgetExhausted`, not an error.

// Integration tests may use the ergonomic panicking forms freely.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use apres::common::check::{run_cases, Gen};
use apres::common::fault::fuzz_config;
use apres::common::StallReason;
use apres::{
    Benchmark, FaultPlan, GpuConfig, Kernel, SimError, Simulation, Termination,
};

fn cfg() -> GpuConfig {
    let mut c = GpuConfig::small_test();
    c.core.warps_per_sm = 8;
    c
}

fn kernel() -> Kernel {
    Benchmark::Srad.kernel_scaled(4)
}

/// Class 1: every DRAM response is dropped. No warp can ever retire its
/// load, so the watchdog must convert the hang into a typed diagnosis that
/// names the stalled warps and the L1 MSHRs they wait on.
#[test]
fn dropped_dram_responses_become_watchdog_diagnosis() {
    let err = Simulation::new(kernel())
        .config(cfg())
        .fault_plan(FaultPlan::seeded(7).dropping_dram_responses(1.0))
        .watchdog(20_000)
        .max_cycles(2_000_000)
        .run()
        .expect_err("a fully dropped memory system cannot drain");
    assert_eq!(err.class(), "watchdog-timeout");
    let SimError::WatchdogTimeout {
        cycle,
        idle_cycles,
        diagnosis,
    } = err
    else {
        panic!("wrong variant: {err:?}");
    };
    assert!(cycle > 0);
    // The watchdog samples progress every 256 cycles, so the reported idle
    // window is the configured one rounded up to the next sample point.
    assert!(
        (20_000..20_512).contains(&idle_cycles),
        "idle window {idle_cycles}"
    );
    assert!(
        !diagnosis.stalled_warps.is_empty(),
        "diagnosis must name stalled warps"
    );
    assert!(
        diagnosis
            .stalled_warps
            .iter()
            .any(|w| w.waiting_on == StallReason::PendingLoad),
        "at least one warp must be blocked on a load: {:?}",
        diagnosis.stalled_warps
    );
    assert!(
        !diagnosis.inflight_mshrs.is_empty(),
        "the lines being waited on must be named"
    );
    assert!(diagnosis.mem_submitted > diagnosis.mem_delivered);
}

/// Class 2: delayed responses degrade performance but preserve results.
#[test]
fn delayed_dram_responses_degrade_gracefully() {
    let clean = Simulation::new(kernel())
        .config(cfg())
        .max_cycles(4_000_000)
        .run()
        .expect("clean run drains");
    let slow = Simulation::new(kernel())
        .config(cfg())
        .fault_plan(FaultPlan::seeded(11).delaying_dram_responses(0.8, 300))
        .max_cycles(8_000_000)
        .run()
        .expect("delays must not kill the run");
    assert!(slow.termination.is_drained());
    assert!(slow.faults.delayed_responses > 0, "{:?}", slow.faults);
    assert!(
        slow.cycles > clean.cycles,
        "delays must cost cycles: {} vs {}",
        slow.cycles,
        clean.cycles
    );
    assert_eq!(
        slow.sim.instructions, clean.sim.instructions,
        "faults must never change the work performed"
    );
}

/// Class 3: periodic MSHR-exhaustion bursts are absorbed by the LSU/L1
/// retry path.
#[test]
fn mshr_exhaustion_bursts_are_absorbed() {
    let r = Simulation::new(kernel())
        .config(cfg())
        .fault_plan(FaultPlan::seeded(3).exhausting_mshrs(200, 40))
        .max_cycles(8_000_000)
        .run()
        .expect("MSHR bursts must be survivable");
    assert!(r.termination.is_drained());
    assert!(r.faults.mshr_refusals > 0, "{:?}", r.faults);
}

/// Class 4: corrupted SAP predictions waste bandwidth, never correctness.
#[test]
fn corrupted_sap_predictions_only_cost_performance() {
    let clean = Simulation::new(Benchmark::Lud.kernel_scaled(4))
        .config(cfg())
        .apres()
        .max_cycles(4_000_000)
        .run()
        .expect("clean APRES run drains");
    let noisy = Simulation::new(Benchmark::Lud.kernel_scaled(4))
        .config(cfg())
        .apres()
        .fault_plan(FaultPlan::seeded(5).corrupting_sap(1.0))
        .max_cycles(8_000_000)
        .run()
        .expect("corrupted predictions must be survivable");
    assert!(noisy.termination.is_drained());
    assert!(noisy.faults.corrupted_predictions > 0, "{:?}", noisy.faults);
    assert_eq!(noisy.sim.instructions, clean.sim.instructions);
}

/// Class 5: requests vanishing in the interconnect also strand their warps
/// and must be diagnosed, not hung.
#[test]
fn dropped_noc_requests_become_watchdog_timeout() {
    let err = Simulation::new(kernel())
        .config(cfg())
        .fault_plan(FaultPlan::seeded(13).dropping_noc_requests(1.0))
        .watchdog(20_000)
        .max_cycles(2_000_000)
        .run()
        .expect_err("fully dropped requests cannot drain");
    assert_eq!(err.class(), "watchdog-timeout");
}

/// Class 6: every fuzzed geometry mutation is rejected up front by
/// validation — construction code never sees (let alone panics on) a
/// malformed configuration.
#[test]
fn fuzzed_configs_are_rejected_as_typed_errors() {
    run_cases(32, |_, g: &mut Gen| {
        let mut cfg = GpuConfig::small_test();
        let mutation = fuzz_config(&mut cfg, g.rng());
        match Simulation::new(kernel()).config(cfg).max_cycles(1000).run() {
            Err(SimError::ConfigValidation { .. }) => Ok(()),
            Err(e) => Err(format!("{mutation}: wrong error class [{}] {e}", e.class())),
            Ok(_) => Err(format!("{mutation}: accepted a malformed config")),
        }
    });
}

/// Class 7: running out of cycle budget is a structured outcome
/// distinguishable from both success and deadlock.
#[test]
fn budget_exhaustion_is_structured_not_an_error() {
    let r = Simulation::new(Benchmark::Km.kernel_scaled(64))
        .config(cfg())
        .max_cycles(400)
        .run()
        .expect("budget exhaustion is not an error");
    assert_eq!(r.termination, Termination::BudgetExhausted { budget: 400 });
    assert!(r.timed_out, "legacy flag mirrors the termination");
    assert_eq!(r.cycles, 400);
}

/// The watchdog window is configurable and can be disabled; with it off, a
/// deadlocked run degrades to budget exhaustion instead of a diagnosis.
#[test]
fn watchdog_off_degrades_deadlock_to_budget_exhaustion() {
    let r = Simulation::new(kernel())
        .config(cfg())
        .fault_plan(FaultPlan::seeded(7).dropping_dram_responses(1.0))
        .no_watchdog()
        .max_cycles(60_000)
        .run()
        .expect("without a watchdog the budget is the only limit");
    assert_eq!(
        r.termination,
        Termination::BudgetExhausted { budget: 60_000 }
    );
}

/// Reproducibility: the same plan injects byte-for-byte the same faults.
#[test]
fn fault_injection_is_deterministic_per_seed() {
    let plan = FaultPlan::seeded(42)
        .delaying_dram_responses(0.5, 200)
        .exhausting_mshrs(300, 30)
        .corrupting_sap(0.5);
    let run = |plan: FaultPlan| {
        Simulation::new(Benchmark::Lud.kernel_scaled(4))
            .config(cfg())
            .apres()
            .fault_plan(plan)
            .max_cycles(8_000_000)
            .run()
            .expect("survivable plan drains")
    };
    let a = run(plan.clone());
    let b = run(plan.clone());
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.faults, b.faults);
    assert_eq!(a.l1, b.l1);
    // A different seed changes the injection pattern.
    let c = run(FaultPlan { seed: 43, ..plan });
    assert_ne!(
        (a.cycles, a.faults),
        (c.cycles, c.faults),
        "different fault seeds should inject differently"
    );
}
