//! Integration tests for accounting invariants that must hold on any full
//! simulation, regardless of policy or workload.

// Integration tests may use the ergonomic panicking forms freely.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use apres::{Benchmark, GpuConfig, PrefetcherChoice, RunResult, SchedulerChoice, Simulation, Termination};

fn run(b: Benchmark, s: SchedulerChoice, p: PrefetcherChoice) -> RunResult {
    let mut cfg = GpuConfig::paper_baseline();
    cfg.core.num_sms = 2;
    Simulation::new(b.kernel_scaled(8))
        .config(cfg)
        .scheduler(s)
        .prefetcher(p)
        .max_cycles(5_000_000)
        .run()
        .expect("conservation workloads run to completion")
}

fn check_invariants(r: &RunResult, tag: &str) {
    // Hit/miss taxonomy partitions all demand accesses.
    assert_eq!(
        r.l1.hits + r.l1.misses(),
        r.l1.accesses,
        "{tag}: hits+misses != accesses"
    );
    assert_eq!(
        r.l1.hit_after_hit + r.l1.hit_after_miss,
        r.l1.hits,
        "{tag}: hit split broken"
    );
    // MSHR merges are hits by definition here.
    assert!(r.l1.mshr_merges <= r.l1.hits, "{tag}: merges exceed hits");
    assert!(
        r.l1.merges_into_prefetch <= r.l1.mshr_merges,
        "{tag}: prefetch merges exceed merges"
    );
    // Prefetch verdicts never exceed what was issued.
    assert!(
        r.prefetch.correct() + r.prefetch.useless_evictions
            <= r.prefetch.issued + r.prefetch.late_merged,
        "{tag}: prefetch verdicts exceed issues: {:?}",
        r.prefetch
    );
    // Instruction mix adds up.
    assert!(r.sim.loads + r.sim.stores <= r.sim.instructions, "{tag}");
    // A completed run retired every instruction and drained memory.
    assert!(!r.timed_out, "{tag}: timed out");
    // Latency accounting saw every load instruction exactly once.
    assert_eq!(
        r.mem.completed_loads, r.sim.loads,
        "{tag}: load completions {} != loads issued {}",
        r.mem.completed_loads, r.sim.loads
    );
    // Traffic flows only when there were misses or stores.
    if r.l1.misses() > 0 {
        assert!(r.mem.bytes_to_sm > 0, "{tag}: misses but no fill traffic");
    }
    // Energy counters are populated.
    assert!(r.energy.regfile_accesses >= r.sim.instructions, "{tag}");
}

#[test]
fn invariants_hold_across_policies() {
    for s in [
        SchedulerChoice::Lrr,
        SchedulerChoice::Ccws,
        SchedulerChoice::Mascar,
        SchedulerChoice::Laws,
    ] {
        for p in [PrefetcherChoice::None, PrefetcherChoice::Str, PrefetcherChoice::Sap] {
            let r = run(Benchmark::Srad, s, p);
            check_invariants(&r, &format!("{s:?}+{p:?}"));
        }
    }
}

#[test]
fn invariants_hold_across_benchmarks() {
    for b in Benchmark::ALL {
        let r = run(b, SchedulerChoice::Laws, PrefetcherChoice::Sap);
        check_invariants(&r, b.label());
    }
}

#[test]
fn stores_do_not_pollute_load_accounting() {
    // HISTO and BP contain stores.
    for b in [Benchmark::Histo, Benchmark::Bp] {
        let r = run(b, SchedulerChoice::Lrr, PrefetcherChoice::None);
        assert!(r.sim.stores > 0, "{} should store", b.label());
        check_invariants(&r, b.label());
    }
}

#[test]
fn simd_efficiency_reflects_divergence() {
    // BFS has diverged gathers (8/4 active lanes); HS is fully converged.
    let bfs = run(Benchmark::Bfs, SchedulerChoice::Lrr, PrefetcherChoice::None);
    let hs = run(Benchmark::Hs, SchedulerChoice::Lrr, PrefetcherChoice::None);
    let eff = |r: &RunResult| r.sim.simd_efficiency(32);
    assert!(eff(&bfs) < 0.95, "BFS efficiency {:.3}", eff(&bfs));
    assert!(eff(&hs) > 0.99, "HS efficiency {:.3}", eff(&hs));
}

#[test]
fn l1_bypass_composes_with_apres() {
    let mut cfg = GpuConfig::paper_baseline();
    cfg.core.num_sms = 2;
    cfg.l1.bypass = true;
    let r = Simulation::new(Benchmark::Km.kernel_scaled(8))
        .config(cfg)
        .apres()
        .max_cycles(5_000_000)
        .run()
        .expect("bypass+apres runs to completion");
    check_invariants(&r, "bypass+apres");
}

#[test]
fn cycle_cap_reports_timeout_cleanly() {
    let mut cfg = GpuConfig::paper_baseline();
    cfg.core.num_sms = 2;
    let r = Simulation::new(Benchmark::Km.kernel_scaled(64))
        .config(cfg)
        .max_cycles(500)
        .run()
        .expect("budget exhaustion is a structured outcome, not an error");
    assert!(r.timed_out);
    assert_eq!(r.cycles, 500);
    assert_eq!(r.termination, Termination::BudgetExhausted { budget: 500 });
    assert_eq!(r.termination.to_string(), "budget-exhausted(500)");
}
