//! Cross-crate integration: bit-exact determinism of full simulations.

// Integration tests may use the ergonomic panicking forms freely.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use apres::{Benchmark, GpuConfig, PrefetcherChoice, SchedulerChoice, Simulation};

fn cfg() -> GpuConfig {
    let mut c = GpuConfig::paper_baseline();
    c.core.num_sms = 2;
    c
}

fn run_once(b: Benchmark, s: SchedulerChoice, p: PrefetcherChoice) -> apres::RunResult {
    Simulation::new(b.kernel_scaled(8))
        .config(cfg())
        .scheduler(s)
        .prefetcher(p)
        .max_cycles(5_000_000)
        .run()
        .expect("determinism workloads run to completion")
}

#[test]
fn every_policy_combination_is_deterministic() {
    let schedulers = [
        SchedulerChoice::Lrr,
        SchedulerChoice::Gto,
        SchedulerChoice::TwoLevel,
        SchedulerChoice::Ccws,
        SchedulerChoice::Mascar,
        SchedulerChoice::Pa,
        SchedulerChoice::Laws,
    ];
    let prefetchers = [
        PrefetcherChoice::None,
        PrefetcherChoice::Str,
        PrefetcherChoice::Sld,
        PrefetcherChoice::Sap,
    ];
    for s in schedulers {
        for p in prefetchers {
            let a = run_once(Benchmark::Spmv, s, p);
            let b = run_once(Benchmark::Spmv, s, p);
            assert_eq!(a.cycles, b.cycles, "{s:?}+{p:?} cycles differ");
            assert_eq!(a.sim, b.sim, "{s:?}+{p:?} sim stats differ");
            assert_eq!(a.l1, b.l1, "{s:?}+{p:?} cache stats differ");
            assert_eq!(a.prefetch, b.prefetch, "{s:?}+{p:?} prefetch stats differ");
            assert_eq!(a.mem, b.mem, "{s:?}+{p:?} memory stats differ");
        }
    }
}

#[test]
fn all_benchmarks_complete_under_apres() {
    for b in Benchmark::ALL {
        let r = run_once(b, SchedulerChoice::Laws, PrefetcherChoice::Sap);
        assert!(!r.timed_out, "{} timed out", b.label());
        assert!(r.ipc() > 0.0, "{} produced no work", b.label());
        // 2 SMs × 48 warps × block waves × body × 8 iterations.
        let waves = u64::from(cfg().core.waves_per_slot);
        let expected = 2 * 48 * waves * b.kernel_scaled(8).dynamic_len();
        assert_eq!(r.sim.instructions, expected, "{}", b.label());
    }
}

#[test]
fn epoch_engine_matches_serial_on_every_benchmark() {
    // Harness-layer leg of the DESIGN.md §14 contract: for all 15 Table-I
    // kernels, in both step modes, the epoch engine at 2 threads produces
    // the exact RunResult of the serial engine.
    use apres::StepMode;
    for b in Benchmark::ALL {
        for mode in [StepMode::Tick, StepMode::SkipAhead] {
            let at = |threads: usize| {
                Simulation::new(b.kernel_scaled(8))
                    .config(cfg())
                    .scheduler(SchedulerChoice::Laws)
                    .prefetcher(PrefetcherChoice::Sap)
                    .max_cycles(5_000_000)
                    .step_mode(mode)
                    .sim_threads(threads)
                    .run()
                    .expect("determinism workloads run to completion")
            };
            assert_eq!(at(0), at(2), "{} {mode}", b.label());
        }
    }
}

#[test]
fn different_seeds_change_behaviour_of_noisy_kernels() {
    let base = Benchmark::Km.kernel_scaled(8);
    let r1 = Simulation::new(base.clone())
        .config(cfg())
        .run()
        .expect("KM runs");
    // Rebuild with a different seed through the builder API.
    let k2 = apres::Kernel::builder("KM-reseeded")
        .seed(999)
        .at_pc(0xE8)
        .load(base.pattern(apres::kernel::LoadSlot(0)).clone(), &[])
        .alu(8, &[0])
        .alu(4, &[1])
        .iterations(8)
        .build();
    let r2 = Simulation::new(k2).config(cfg()).run().expect("reseeded KM runs");
    assert_ne!(
        (r1.cycles, r1.l1.hits),
        (r2.cycles, r2.l1.hits),
        "noise must depend on the kernel seed"
    );
}
